package core

import (
	"fmt"

	"dvbp/internal/eventq"
	"dvbp/internal/item"
)

// Option configures a simulation run.
type Option func(*config)

type config struct {
	clairvoyant bool
	audit       *Audit
	observer    Observer
}

// WithClairvoyance exposes item departure times to the policy (Request.
// HasDeparture = true). This enables the clairvoyant DVBP variant discussed
// as future work in Section 8; the paper's own algorithms never need it.
func WithClairvoyance() Option {
	return func(c *config) { c.clairvoyant = true }
}

// WithAudit records every packing decision into a (caller-owned) Audit for
// invariant checking in tests.
func WithAudit(a *Audit) Option {
	return func(c *config) { c.audit = a }
}

// Observer receives engine lifecycle callbacks; used by instrumentation such
// as the Theorem 2 leading-interval decomposition. Any method may be nil-safe
// no-op via BaseObserver.
type Observer interface {
	// BeforePack fires when an item is about to be packed, after departures
	// at or before its arrival time have been processed.
	BeforePack(req Request, open []*Bin)
	// AfterPack fires after the item is packed.
	AfterPack(req Request, b *Bin, opened bool)
	// BinClosed fires when a bin's last item departs at time t.
	BinClosed(b *Bin, t float64)
}

// WithObserver attaches an Observer to the run.
func WithObserver(o Observer) Option {
	return func(c *config) { c.observer = o }
}

// SelectObserver is an optional extension of Observer. When the attached
// Observer also implements SelectObserver, the engine counts the Bin.Fits
// evaluations each Policy.Select performs and reports them after every
// decision — the per-decision accounting the metrics layer records.
//
// chosen is Select's return value: nil means the policy declined every open
// bin and the engine opened a fresh one. fitChecks counts only the policy's
// own Fits calls; the engine's feasibility re-check while packing is not
// included. Runs whose observer does not implement SelectObserver pay no
// counting overhead.
type SelectObserver interface {
	// AfterSelect fires after Policy.Select returns, before the item is
	// packed (and before any new bin is opened).
	AfterSelect(req Request, chosen *Bin, fitChecks int)
}

// BaseObserver is an Observer with no-op methods, for embedding.
type BaseObserver struct{}

// BeforePack implements Observer.
func (BaseObserver) BeforePack(Request, []*Bin) {}

// AfterPack implements Observer.
func (BaseObserver) AfterPack(Request, *Bin, bool) {}

// BinClosed implements Observer.
func (BaseObserver) BinClosed(*Bin, float64) {}

type departure struct {
	itemID int
	binID  int
}

// Simulate runs the Any Fit skeleton (Algorithm 1) over the item list with
// the given policy and returns the resulting packing and its MinUsageTime
// cost. The list is validated first; the input is not modified.
//
// Event order: items are processed by (arrival, SeqNo). Because active
// intervals are half-open, departures at time t are processed before
// arrivals at time t — an item departing at t has freed its capacity for an
// item arriving at t. (The paper's Theorem 5 construction has new items
// arrive "just before" old ones depart; such instances encode the arrival at
// time t - ε or rely on same-time arrival ordering, both of which this
// engine preserves.)
func Simulate(l *item.List, p Policy, opts ...Option) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input: %w", err)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	p.Reset()

	arrivals := l.SortedByArrival()

	var (
		open        []*Bin // opening order (ascending ID); may hold tombstones until compacted
		holes       int    // tombstone (nil) count in open
		departures  eventq.Queue[departure]
		res         = &Result{Algorithm: p.Name(), Dim: l.Dim, Items: l.Len(), Span: l.Span(), Mu: l.Mu()}
		nextBinID   int
		binsByID    = make(map[int]*Bin)
		sizesByItem = make(map[int]item.Item, l.Len())
	)
	for _, it := range l.Items {
		sizesByItem[it.ID] = it
	}
	var (
		probe  *fitProbe
		selObs SelectObserver
	)
	if so, ok := cfg.observer.(SelectObserver); ok {
		selObs = so
		probe = &fitProbe{}
	}

	// Closing a bin only tombstones its slot — O(1), so a burst of closings
	// between two arrivals costs O(burst) instead of the O(burst·open)
	// repeated splicing would. The slice is compacted (order preserved)
	// before the next arrival consults the policy.
	closeBinAt := func(b *Bin, t float64) {
		res.Bins = append(res.Bins, BinUsage{BinID: b.ID, OpenedAt: b.OpenedAt, ClosedAt: t, Packed: b.PackedItems()})
		res.Cost += t - b.OpenedAt
		open[b.openIdx] = nil
		holes++
		delete(binsByID, b.ID)
		p.OnClose(b)
		if cfg.observer != nil {
			cfg.observer.BinClosed(b, t)
		}
	}

	compact := func() {
		if holes == 0 {
			return
		}
		live := open[:0]
		for _, b := range open {
			if b != nil {
				b.openIdx = len(live)
				live = append(live, b)
			}
		}
		for i := len(live); i < len(open); i++ {
			open[i] = nil // release closed bins to the GC
		}
		open = live
		holes = 0
	}

	processDepartures := func(upTo float64) error {
		for _, ev := range departures.PopUntil(upTo) {
			b, ok := binsByID[ev.Payload.binID]
			if !ok {
				return fmt.Errorf("core: departure from unknown bin %d", ev.Payload.binID)
			}
			if err := b.remove(ev.Payload.itemID); err != nil {
				return fmt.Errorf("core: %w", err)
			}
			if b.Empty() {
				closeBinAt(b, ev.Time)
			}
		}
		return nil
	}

	for _, it := range arrivals {
		// Departures strictly before or at the arrival instant free capacity
		// first (half-open intervals).
		if err := processDepartures(it.Arrival); err != nil {
			return nil, err
		}
		compact()

		req := Request{ID: it.ID, SeqNo: it.SeqNo, Arrival: it.Arrival, Size: it.Size}
		if cfg.clairvoyant {
			req.Departure = it.Departure
			req.HasDeparture = true
		}
		if cfg.observer != nil {
			cfg.observer.BeforePack(req, open)
		}

		if probe != nil {
			probe.armed, probe.n = true, 0
		}
		b := p.Select(req, open)
		if probe != nil {
			probe.armed = false
			selObs.AfterSelect(req, b, probe.n)
		}
		opened := false
		if b == nil {
			b = newBin(nextBinID, l.Dim, it.Arrival)
			b.openIdx = len(open)
			b.probe = probe
			nextBinID++
			open = append(open, b)
			binsByID[b.ID] = b
			opened = true
		} else if _, known := binsByID[b.ID]; !known {
			return nil, fmt.Errorf("core: policy %s returned closed or foreign bin %d", p.Name(), b.ID)
		}
		if cfg.audit != nil {
			// Record before packing so loads and fit flags reflect the state
			// the policy actually saw.
			cfg.audit.record(req, b, opened, open)
		}
		if err := b.pack(it.ID, it.Size); err != nil {
			return nil, fmt.Errorf("core: policy %s chose unfit bin: %w", p.Name(), err)
		}
		p.OnPack(req, b, opened)
		if cfg.observer != nil {
			cfg.observer.AfterPack(req, b, opened)
		}

		res.Placements = append(res.Placements, Placement{ItemID: it.ID, BinID: b.ID, Opened: opened, Time: it.Arrival})
		departures.PushAt(it.Departure, int64(it.ID), departure{itemID: it.ID, binID: b.ID})
		if len(open) > res.MaxConcurrentBins {
			res.MaxConcurrentBins = len(open)
		}
	}

	// Drain remaining departures.
	if err := processDepartures(l.Hull().Hi); err != nil {
		return nil, err
	}
	if departures.Len() != 0 || len(open)-holes != 0 {
		return nil, fmt.Errorf("core: internal error: %d departures and %d bins left after drain", departures.Len(), len(open)-holes)
	}

	res.BinsOpened = nextBinID
	res.sortBins()
	return res, nil
}
