package adversary

import (
	"math"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/lowerbound"
)

func simulate(t *testing.T, in *Instance, p core.Policy) *core.Result {
	t.Helper()
	res, err := core.Simulate(in.List, p)
	if err != nil {
		t.Fatalf("%s on %s: %v", p.Name(), in.Name, err)
	}
	return res
}

func TestTheorem5Validation(t *testing.T) {
	if _, err := Theorem5(0, 4, 5); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := Theorem5(1, 1, 5); err == nil {
		t.Error("k=1 accepted")
	}
	if _, err := Theorem5(1, 4, 0.5); err == nil {
		t.Error("mu<1 accepted")
	}
}

func TestTheorem5InstanceShape(t *testing.T) {
	in, err := Theorem5(3, 4, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.List.Validate(); err != nil {
		t.Fatalf("invalid instance: %v", err)
	}
	if got, want := in.List.Len(), 2*3*4+3*4; got != want {
		t.Errorf("items = %d, want %d", got, want)
	}
	if got := in.List.Mu(); math.Abs(got-10) > 1e-9 {
		t.Errorf("instance mu = %v, want 10", got)
	}
}

// TestTheorem5ForcesDKBins: every Any Fit algorithm that keeps all open bins
// in its list L opens at least dk bins, all held open for ~μ+1. Next Fit is
// excluded: its L holds only the current bin, so the proof's "R₁ items land
// in the dk existing bins" step does not apply to it (Next Fit is covered by
// the stronger Theorem 6 bound instead).
func TestTheorem5ForcesDKBins(t *testing.T) {
	const mu = 5.0
	for _, d := range []int{1, 2, 3} {
		for _, k := range []int{2, 4, 8} {
			in, err := Theorem5(d, k, mu)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range core.StandardPolicies(1) {
				if p.Name() == "NextFit" {
					continue
				}
				res := simulate(t, in, p)
				if res.BinsOpened < in.ExpectedBins {
					t.Errorf("%s on %s: %d bins, want >= %d", p.Name(), in.Name, res.BinsOpened, in.ExpectedBins)
				}
				// Every policy's cost must be >= dk(mu+1-slack).
				wantCost := float64(d*k) * (mu + 1 - 2*arrivalSlack)
				if res.Cost < wantCost-1e-6 {
					t.Errorf("%s on %s: cost %v, want >= %v", p.Name(), in.Name, res.Cost, wantCost)
				}
			}
		}
	}
}

// TestTheorem5OPTUpperIsFeasible: the certificate must dominate the true
// lower bound (sanity: LB <= OPTUpper).
func TestTheorem5OPTUpperIsFeasible(t *testing.T) {
	in, err := Theorem5(2, 8, 10)
	if err != nil {
		t.Fatal(err)
	}
	lb := lowerbound.Compute(in.List).Best()
	if lb > in.OPTUpper+1e-9 {
		t.Errorf("lower bound %v exceeds claimed OPT upper bound %v", lb, in.OPTUpper)
	}
}

// TestTheorem5RatioApproachesBound: the measured ratio grows toward (μ+1)d
// as k increases.
func TestTheorem5RatioApproachesBound(t *testing.T) {
	const mu = 4.0
	for _, d := range []int{1, 2} {
		prev := 0.0
		for _, k := range []int{2, 8, 32} {
			in, err := Theorem5(d, k, mu)
			if err != nil {
				t.Fatal(err)
			}
			res := simulate(t, in, core.NewFirstFit())
			ratio := in.MeasuredRatio(res.Cost)
			if ratio < prev-1e-9 {
				t.Errorf("d=%d: ratio not increasing in k: %v after %v", d, ratio, prev)
			}
			prev = ratio
			if k == 32 {
				target := in.AsymptoticRatio
				if ratio < 0.8*target {
					t.Errorf("d=%d k=32: ratio %v too far below target %v", d, ratio, target)
				}
				if ratio > target+1e-9 {
					t.Errorf("d=%d k=32: measured ratio %v exceeds the theoretical limit %v", d, ratio, target)
				}
			}
		}
	}
}

func TestTheorem6Validation(t *testing.T) {
	if _, err := Theorem6(1, 3, 5); err == nil {
		t.Error("odd k accepted")
	}
	if _, err := Theorem6(0, 4, 5); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := Theorem6(1, 4, 0); err == nil {
		t.Error("mu<1 accepted")
	}
}

// TestTheorem6ForcesNextFitBins: Next Fit opens exactly 1+(k-1)d bins, each
// held open for μ.
func TestTheorem6ForcesNextFitBins(t *testing.T) {
	const mu = 6.0
	for _, d := range []int{1, 2, 3} {
		for _, k := range []int{2, 4, 8} {
			in, err := Theorem6(d, k, mu)
			if err != nil {
				t.Fatal(err)
			}
			res := simulate(t, in, core.NewNextFit())
			if res.BinsOpened != in.ExpectedBins {
				t.Errorf("NextFit on %s: %d bins, want %d", in.Name, res.BinsOpened, in.ExpectedBins)
			}
			wantCost := float64(in.ExpectedBins) * mu
			if math.Abs(res.Cost-wantCost) > 1e-6 {
				t.Errorf("NextFit on %s: cost %v, want %v", in.Name, res.Cost, wantCost)
			}
		}
	}
}

// TestTheorem6FirstFitDoesBetter: the construction is specific to Next Fit —
// First Fit packs it much more tightly (it reuses early bins).
func TestTheorem6FirstFitDoesBetter(t *testing.T) {
	in, err := Theorem6(2, 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	nf := simulate(t, in, core.NewNextFit())
	ff := simulate(t, in, core.NewFirstFit())
	if ff.Cost >= nf.Cost {
		t.Errorf("FirstFit (%v) should beat NextFit (%v) on the Theorem 6 instance", ff.Cost, nf.Cost)
	}
}

// TestTheorem6RatioApproaches2MuD: measured NF ratio approaches 2μd.
func TestTheorem6RatioApproaches2MuD(t *testing.T) {
	const mu = 3.0
	for _, d := range []int{1, 2} {
		in, err := Theorem6(d, 64, mu)
		if err != nil {
			t.Fatal(err)
		}
		res := simulate(t, in, core.NewNextFit())
		ratio := in.MeasuredRatio(res.Cost)
		target := in.AsymptoticRatio
		if ratio < 0.7*target {
			t.Errorf("d=%d: ratio %v too far below 2μd = %v", d, ratio, target)
		}
		if ratio > target+1e-9 {
			t.Errorf("d=%d: ratio %v exceeds 2μd = %v", d, ratio, target)
		}
	}
}

func TestTheorem8Validation(t *testing.T) {
	if _, err := Theorem8(0, 5); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Theorem8(2, 0.2); err == nil {
		t.Error("mu<1 accepted")
	}
}

// TestTheorem8Forces2NBins: Move To Front opens exactly 2n bins, each open
// for μ.
func TestTheorem8Forces2NBins(t *testing.T) {
	const mu = 7.0
	for _, n := range []int{1, 2, 8, 32} {
		in, err := Theorem8(n, mu)
		if err != nil {
			t.Fatal(err)
		}
		res := simulate(t, in, core.NewMoveToFront())
		if res.BinsOpened != 2*n {
			t.Errorf("MTF on %s: %d bins, want %d", in.Name, res.BinsOpened, 2*n)
		}
		if math.Abs(res.Cost-2*float64(n)*mu) > 1e-6 {
			t.Errorf("MTF on %s: cost %v, want %v", in.Name, res.Cost, 2*float64(n)*mu)
		}
	}
}

// TestTheorem8NextFitAlsoTrapped: the paper notes the same sequence yields 2μ
// for Next Fit.
func TestTheorem8NextFitAlsoTrapped(t *testing.T) {
	in, err := Theorem8(16, 5)
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, in, core.NewNextFit())
	if res.BinsOpened != 2*16 {
		t.Errorf("NextFit: %d bins, want %d", res.BinsOpened, 32)
	}
}

// TestTheorem8RatioApproaches2Mu.
func TestTheorem8RatioApproaches2Mu(t *testing.T) {
	const mu = 5.0
	in, err := Theorem8(100, mu)
	if err != nil {
		t.Fatal(err)
	}
	res := simulate(t, in, core.NewMoveToFront())
	ratio := in.MeasuredRatio(res.Cost)
	if ratio < 0.9*2*mu {
		t.Errorf("ratio %v too far below 2μ = %v", ratio, 2*mu)
	}
	if ratio > 2*mu+1e-9 {
		t.Errorf("ratio %v exceeds 2μ = %v", ratio, 2*mu)
	}
}

func TestBestFitPillarsValidation(t *testing.T) {
	if _, err := BestFitPillars(1, 10); err == nil {
		t.Error("R=1 accepted")
	}
	if _, err := BestFitPillars(4, 0.5); err == nil {
		t.Error("L<1 accepted")
	}
}

// TestBestFitPillarsStrandsSlivers: Best Fit keeps all R bins open ~L; First
// Fit and Move To Front consolidate slivers and stay cheap.
func TestBestFitPillarsStrandsSlivers(t *testing.T) {
	const r = 10
	l := float64(r * r)
	in, err := BestFitPillars(r, l)
	if err != nil {
		t.Fatal(err)
	}
	bf := simulate(t, in, core.NewBestFit(core.MaxLoad()))
	ff := simulate(t, in, core.NewFirstFit())
	mtf := simulate(t, in, core.NewMoveToFront())

	if bf.BinsOpened != r {
		t.Errorf("BestFit opened %d bins, want %d", bf.BinsOpened, r)
	}
	// BF pays ~R*L; FF/MTF pay ~L + R^2/2.
	if bf.Cost < 0.9*float64(r)*l {
		t.Errorf("BestFit cost %v, want >= %v", bf.Cost, 0.9*float64(r)*l)
	}
	if ff.Cost > 2.5*(l+float64(r*r)/2) {
		t.Errorf("FirstFit cost %v unexpectedly high", ff.Cost)
	}
	if bf.Cost < 3*ff.Cost {
		t.Errorf("BestFit (%v) should be far worse than FirstFit (%v)", bf.Cost, ff.Cost)
	}
	if bf.Cost < 3*mtf.Cost {
		t.Errorf("BestFit (%v) should be far worse than MoveToFront (%v)", bf.Cost, mtf.Cost)
	}
}

// TestBestFitPillarsRatioGrows: the certified BF ratio grows with R.
func TestBestFitPillarsRatioGrows(t *testing.T) {
	prev := 0.0
	for _, r := range []int{4, 8, 16, 32} {
		in, err := BestFitPillars(r, float64(r*r))
		if err != nil {
			t.Fatal(err)
		}
		res := simulate(t, in, core.NewBestFit(core.MaxLoad()))
		ratio := in.MeasuredRatio(res.Cost)
		if ratio <= prev {
			t.Errorf("R=%d: ratio %v did not grow (prev %v)", r, ratio, prev)
		}
		prev = ratio
	}
	if prev < 10 {
		t.Errorf("R=32 ratio %v should exceed 10", prev)
	}
}

// TestCertificatesDominateLowerBounds: for every construction, the claimed
// OPT upper bound is >= the computed lower bound (i.e. the certificate is
// plausible), and the measured ratio is <= the theoretical target.
func TestCertificatesDominateLowerBounds(t *testing.T) {
	mk := []func() (*Instance, error){
		func() (*Instance, error) { return Theorem5(2, 16, 8) },
		func() (*Instance, error) { return Theorem6(2, 16, 8) },
		func() (*Instance, error) { return Theorem8(16, 8) },
		func() (*Instance, error) { return BestFitPillars(8, 64) },
	}
	for _, f := range mk {
		in, err := f()
		if err != nil {
			t.Fatal(err)
		}
		lb := lowerbound.Compute(in.List).Best()
		if lb > in.OPTUpper+1e-9 {
			t.Errorf("%s: LB %v > OPTUpper %v", in.Name, lb, in.OPTUpper)
		}
	}
}
