// Command dvbpchaos runs policy comparisons under failure: server crashes
// from deterministic schedules (seeded MTBF or explicit traces), eviction and
// retry of displaced items, and finite fleets with rejection or an admission
// queue. For every policy it simulates the same workload twice — once clean,
// once under the fault plan — and reports the robustness overhead next to
// the failure accounting.
//
// All schedules are pure functions of their seeds: the same flags produce
// byte-identical output, so runs are replayable and diffable.
//
// Examples:
//
//	dvbpchaos -d 2 -n 1000 -mtbf 50 -retry backoff:1:30 -all
//	dvbpchaos -trace trace.csv -crash-trace '0@5,2+1.5' -policy ff
//	dvbpchaos -n 500 -mtbf 20 -max-servers 10 -queue-deadline 5 -json
//	dvbpchaos -all -mtbf 30 -metrics -timeout 30s
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"dvbp/internal/core"
	"dvbp/internal/faults"
	"dvbp/internal/item"
	"dvbp/internal/metrics"
	"dvbp/internal/report"
	"dvbp/internal/workload"
)

// run is one policy's clean-vs-faulty comparison, shaped for JSON output.
type run struct {
	Policy        string  `json:"policy"`
	CleanCost     float64 `json:"clean_cost"`
	FaultyCost    float64 `json:"faulty_cost"`
	Overhead      float64 `json:"overhead"`
	Crashes       int     `json:"crashes"`
	Evictions     int     `json:"evictions"`
	Retries       int     `json:"retries"`
	ItemsLost     int     `json:"items_lost"`
	Rejected      int     `json:"rejected"`
	TimedOut      int     `json:"timed_out"`
	QueuedPlaced  int     `json:"queued_placed"`
	QueueDelay    float64 `json:"queue_delay"`
	LostUsageTime float64 `json:"lost_usage_time"`
	Served        int     `json:"served"`
}

type output struct {
	Dim    int     `json:"d"`
	Items  int     `json:"items"`
	Span   float64 `json:"span"`
	Mu     float64 `json:"mu"`
	Faults string  `json:"faults"`
	Runs   []run   `json:"runs"`
	// Partial is set when a -timeout cancelled the sweep before every
	// policy finished; Runs holds the completed prefix.
	Partial bool `json:"partial,omitempty"`
}

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (.csv or .json); overrides the generator flags")
		d         = flag.Int("d", 2, "dimensions (generator)")
		n         = flag.Int("n", 1000, "items (generator)")
		mu        = flag.Int("mu", 10, "max item duration (generator)")
		horizon   = flag.Int("T", 1000, "span (generator)")
		binSize   = flag.Int("B", 100, "bin capacity granularity (generator)")
		seed      = flag.Int64("seed", 1, "generator / RandomFit seed")
		policy    = flag.String("policy", "MoveToFront", "packing policy (see dvbpsim -list)")
		all       = flag.Bool("all", false, "run all seven standard policies")
		jsonOut   = flag.Bool("json", false, "emit the comparison as JSON instead of a table")
		metricsF  = flag.Bool("metrics", false, "dump JSON + Prometheus metric snapshots per policy")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole sweep (0 = none); partial results are flushed on expiry")
	)
	var spec faults.Spec
	spec.Register(flag.CommandLine, "")
	flag.Parse()

	plan, err := spec.Plan()
	if err != nil {
		fatal(err)
	}
	if !plan.Active() {
		fatal(fmt.Errorf("no fault plan configured: set -mtbf, -crash-trace or -max-servers (this command exists to run chaos; for fault-free runs use dvbpsim)"))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	l, err := loadInstance(*tracePath, *d, *n, *mu, *horizon, *binSize, *seed)
	if err != nil {
		fatal(err)
	}

	var policies []core.Policy
	if *all {
		policies = core.StandardPolicies(*seed)
	} else {
		p, err := core.NewPolicy(*policy, *seed)
		if err != nil {
			fatal(err)
		}
		policies = []core.Policy{p}
	}

	out := output{Dim: l.Dim, Items: l.Len(), Span: l.Span(), Mu: l.Mu(), Faults: plan.String()}
	collectors := make(map[string]*metrics.Collector)
	for _, p := range policies {
		if ctx.Err() != nil {
			out.Partial = true
			break
		}
		clean, err := core.Simulate(l, p)
		if err != nil {
			fatal(err)
		}
		p.Reset()
		opts := plan.Options()
		if *metricsF {
			// A manual clock keeps the snapshot free of wall-time noise:
			// chaos runs care about simulated time, and the output stays
			// byte-identical across replays.
			col := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
			collectors[p.Name()] = col
			opts = append(opts, core.WithObserver(col))
		}
		faulty, err := core.Simulate(l, p, opts...)
		if err != nil {
			fatal(err)
		}
		served := 0
		for _, o := range faulty.Outcomes {
			if o == core.OutcomeServed {
				served++
			}
		}
		out.Runs = append(out.Runs, run{
			Policy:        p.Name(),
			CleanCost:     clean.Cost,
			FaultyCost:    faulty.Cost,
			Overhead:      faulty.Cost / clean.Cost,
			Crashes:       faulty.Crashes,
			Evictions:     faulty.Evictions,
			Retries:       faulty.Retries,
			ItemsLost:     faulty.ItemsLost,
			Rejected:      faulty.Rejected,
			TimedOut:      faulty.TimedOut,
			QueuedPlaced:  faulty.QueuedPlaced,
			QueueDelay:    faulty.QueueDelay,
			LostUsageTime: faulty.LostUsageTime,
			Served:        served,
		})
	}

	if err := flush(out, *jsonOut); err != nil {
		fatal(err)
	}
	if *metricsF {
		for _, p := range policies {
			col, ok := collectors[p.Name()]
			if !ok {
				continue
			}
			label := ""
			if len(policies) > 1 {
				label = p.Name()
			}
			if err := report.WriteMetrics(os.Stdout, label, col.Snapshot()); err != nil {
				fatal(err)
			}
		}
	}
	if out.Partial {
		fmt.Fprintf(os.Stderr, "dvbpchaos: timeout after %v: %d/%d policies completed (partial results above)\n",
			*timeout, len(out.Runs), len(policies))
		os.Exit(2)
	}
}

// flush writes the comparison, as JSON or as the human-readable header+table.
func flush(out output, asJSON bool) error {
	if asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(out)
	}
	fmt.Printf("instance: d=%d items=%d span=%.4g mu=%.4g\n", out.Dim, out.Items, out.Span, out.Mu)
	fmt.Printf("faults: %s\n", out.Faults)
	t := &report.Table{Headers: []string{
		"policy", "clean cost", "faulty cost", "overhead",
		"crashes", "evict", "retry", "lost", "reject", "timeout", "served",
	}}
	for _, r := range out.Runs {
		t.AddRow(r.Policy,
			fmt.Sprintf("%.4f", r.CleanCost), fmt.Sprintf("%.4f", r.FaultyCost),
			fmt.Sprintf("%.4fx", r.Overhead),
			fmt.Sprintf("%d", r.Crashes), fmt.Sprintf("%d", r.Evictions),
			fmt.Sprintf("%d", r.Retries), fmt.Sprintf("%d", r.ItemsLost),
			fmt.Sprintf("%d", r.Rejected), fmt.Sprintf("%d", r.TimedOut),
			fmt.Sprintf("%d/%d", r.Served, out.Items))
	}
	fmt.Print(t.Render())
	return nil
}

func loadInstance(path string, d, n, mu, horizon, binSize int, seed int64) (*item.List, error) {
	if path == "" {
		return workload.Uniform(workload.UniformConfig{D: d, N: n, Mu: mu, T: horizon, B: binSize}, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return workload.ReadJSON(f)
	}
	return workload.ReadCSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvbpchaos:", err)
	if errors.Is(err, context.DeadlineExceeded) {
		os.Exit(2)
	}
	os.Exit(1)
}
