package search

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"dvbp/internal/core"
	"dvbp/internal/exactopt"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// Config parameterises a search run.
type Config struct {
	// Policy is the canonical policy name to attack.
	Policy string
	// D is the instance dimension.
	D int
	// Items is the (fixed) number of items per candidate instance.
	Items int
	// MaxMu bounds durations to [1, MaxMu].
	MaxMu float64
	// TimeRange bounds arrivals to [0, TimeRange).
	TimeRange float64
	// Restarts and Steps control the hill-climbing budget.
	Restarts, Steps int
	// Seed drives everything.
	Seed int64
	// MaxActive guards the exact-OPT DP (0 -> exactopt.DefaultMaxActive).
	MaxActive int
	// SizeGrid quantises sizes to multiples of 1/SizeGrid (0 -> 20). A
	// coarse grid keeps mutations meaningful.
	SizeGrid int
}

func (c Config) maxActive() int {
	if c.MaxActive > 0 {
		return c.MaxActive
	}
	return exactopt.DefaultMaxActive
}

func (c Config) sizeGrid() int {
	if c.SizeGrid > 0 {
		return c.SizeGrid
	}
	return 20
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.D < 1:
		return fmt.Errorf("search: D = %d", c.D)
	case c.Items < 2:
		return fmt.Errorf("search: Items = %d, want >= 2", c.Items)
	case c.MaxMu < 1:
		return fmt.Errorf("search: MaxMu = %g", c.MaxMu)
	case c.TimeRange <= 0:
		return fmt.Errorf("search: TimeRange = %g", c.TimeRange)
	case c.Restarts < 1 || c.Steps < 1:
		return fmt.Errorf("search: Restarts/Steps = %d/%d", c.Restarts, c.Steps)
	}
	if _, err := core.NewPolicy(c.Policy, 0); err != nil {
		return err
	}
	return nil
}

// Witness is the best instance a search found.
type Witness struct {
	List  *item.List
	Cost  float64
	Opt   float64
	Ratio float64
	// Evaluations counts candidate instances scored.
	Evaluations int
}

// Run executes the search and returns the best witness.
func Run(cfg Config) (*Witness, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	best := &Witness{Ratio: 0}
	for restart := 0; restart < cfg.Restarts; restart++ {
		cur := randomInstance(cfg, r)
		curRatio, ok := evaluate(cfg, cur, best)
		if !ok {
			continue
		}
		for step := 0; step < cfg.Steps; step++ {
			cand := mutate(cfg, cur, r)
			candRatio, ok := evaluate(cfg, cand, best)
			if !ok {
				continue
			}
			if candRatio >= curRatio { // plateau moves allowed
				cur, curRatio = cand, candRatio
			}
		}
	}
	if best.List == nil {
		return nil, errors.New("search: no evaluable instance found (MaxActive too low?)")
	}
	return best, nil
}

// evaluate scores a candidate and updates best in place. ok is false when the
// instance cannot be scored (exact OPT infeasible).
func evaluate(cfg Config, l *item.List, best *Witness) (float64, bool) {
	if exactopt.PeakActive(l) > cfg.maxActive() {
		return 0, false
	}
	opt, err := exactopt.Opt(l, exactopt.Options{MaxActive: cfg.maxActive()})
	if err != nil || opt <= 0 {
		return 0, false
	}
	p, err := core.NewPolicy(cfg.Policy, cfg.Seed)
	if err != nil {
		return 0, false
	}
	res, err := core.Simulate(l, p)
	if err != nil {
		return 0, false
	}
	ratio := res.Cost / opt
	best.Evaluations++
	if ratio > best.Ratio {
		best.Ratio = ratio
		best.List = l.Clone()
		best.Cost = res.Cost
		best.Opt = opt
	}
	return ratio, true
}

// randomInstance draws a fresh candidate.
func randomInstance(cfg Config, r *rand.Rand) *item.List {
	l := item.NewList(cfg.D)
	for i := 0; i < cfg.Items; i++ {
		l.Add(randArrival(cfg, r), 0, randSize(cfg, r))
		it := &l.Items[i]
		it.Departure = it.Arrival + randDuration(cfg, r)
	}
	return l
}

// mutate returns a modified copy with one of several local moves applied.
func mutate(cfg Config, l *item.List, r *rand.Rand) *item.List {
	m := l.Clone()
	it := &m.Items[r.Intn(len(m.Items))]
	switch r.Intn(4) {
	case 0: // move arrival, keep duration
		dur := it.Duration()
		it.Arrival = randArrival(cfg, r)
		it.Departure = it.Arrival + dur
	case 1: // new duration
		it.Departure = it.Arrival + randDuration(cfg, r)
	case 2: // resize one dimension
		j := r.Intn(cfg.D)
		it.Size = it.Size.Clone()
		it.Size[j] = randComponent(cfg, r)
	case 3: // swap the order of two items (matters for simultaneous arrivals)
		a, b := r.Intn(len(m.Items)), r.Intn(len(m.Items))
		m.Items[a], m.Items[b] = m.Items[b], m.Items[a]
		_ = m.Normalize()
	}
	return m
}

func randArrival(cfg Config, r *rand.Rand) float64 {
	// Arrivals on a half-unit grid encourage exact-overlap structure, which
	// the analytic constructions show is where bad instances live.
	steps := int(cfg.TimeRange * 2)
	if steps < 1 {
		steps = 1
	}
	return float64(r.Intn(steps)) / 2
}

func randDuration(cfg Config, r *rand.Rand) float64 {
	if cfg.MaxMu <= 1 {
		return 1
	}
	// Half of the time pick an extreme (1 or MaxMu) — the bounds are driven
	// by duration contrast — otherwise uniform.
	switch r.Intn(4) {
	case 0:
		return 1
	case 1:
		return cfg.MaxMu
	default:
		return 1 + math.Floor(r.Float64()*(cfg.MaxMu-1)*2)/2
	}
}

func randSize(cfg Config, r *rand.Rand) vector.Vector {
	v := vector.New(cfg.D)
	for j := range v {
		v[j] = randComponent(cfg, r)
	}
	return v
}

func randComponent(cfg Config, r *rand.Rand) float64 {
	g := cfg.sizeGrid()
	return float64(1+r.Intn(g)) / float64(g)
}
