package main

import (
	"bytes"
	"errors"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
	"time"

	"dvbp/internal/core"
)

// buildChaos compiles the command once per test into a temp binary.
func buildChaos(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dvbpchaos")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// runChaos runs the built binary and returns stdout, stderr and the exit code.
func runChaos(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%s %v: %v", bin, args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// TestKillAtAndRestore is the end-to-end crash torture at the process level:
// the faulty run is killed with a hard os.Exit at several event indices (no
// flush, no sync — a synthetic SIGKILL), then restored, and the restored run's
// stdout (tables, JSON, metrics) must be byte-identical to an uninterrupted
// run with the same flags.
func TestKillAtAndRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	bin := buildChaos(t)
	base := append([]string{"-policy", "MoveToFront", "-json", "-metrics"}, chaosArgs...)

	wantOut, _, code := runChaos(t, bin, base...)
	if code != 0 {
		t.Fatalf("reference run exited %d", code)
	}

	// Checkpointing itself must not change the observable output.
	ckptRef := t.TempDir()
	out, _, code := runChaos(t, bin, append(append([]string{}, base...), "-checkpoint-dir", ckptRef)...)
	if code != 0 {
		t.Fatalf("checkpointed run exited %d", code)
	}
	if out != wantOut {
		t.Fatalf("checkpointed run output differs from plain run:\n--- plain ---\n%s\n--- checkpointed ---\n%s", wantOut, out)
	}

	for _, killAt := range []int64{0, 1, 17, 64, 150, 333} {
		dir := t.TempDir()
		args := append(append([]string{}, base...),
			"-checkpoint-dir", dir, "-checkpoint-every", "32", "-kill-at", strconv.FormatInt(killAt, 10))
		_, stderr, code := runChaos(t, bin, args...)
		if code != 3 {
			t.Fatalf("kill-at %d: exit %d, want 3\nstderr: %s", killAt, code, stderr)
		}
		restore := append(append([]string{}, base...), "-checkpoint-dir", dir, "-restore")
		out, stderr, code := runChaos(t, bin, restore...)
		if code != 0 {
			t.Fatalf("restore after kill-at %d: exit %d\nstderr: %s", killAt, code, stderr)
		}
		if out != wantOut {
			t.Fatalf("restore after kill-at %d diverged:\n--- want ---\n%s\n--- got ---\n%s", killAt, wantOut, out)
		}
		if !strings.Contains(stderr, "resumed at event") {
			t.Errorf("restore stderr lacks the resume notice: %s", stderr)
		}
	}
}

// TestSIGKILLAndRestore kills a real child process with SIGKILL mid-run and
// recovers. Unlike -kill-at the kill instant is not deterministic, so the
// assertion is recovery plus byte-identical final output, whatever was on disk.
func TestSIGKILLAndRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	bin := buildChaos(t)
	// A bigger instance so the run is still in flight when the signal lands.
	args := []string{"-policy", "MoveToFront", "-json",
		"-d", "2", "-n", "8000", "-mu", "8", "-T", "2000", "-B", "100", "-seed", "7",
		"-mtbf", "18", "-fault-seed", "4", "-retry", "backoff:0.5:4",
		"-max-servers", "40", "-queue-deadline", "3"}

	wantOut, _, code := runChaos(t, bin, args...)
	if code != 0 {
		t.Fatalf("reference run exited %d", code)
	}

	dir := t.TempDir()
	wal := filepath.Join(dir, "wal.dvbp")
	cmd := exec.Command(bin, append(append([]string{}, args...), "-checkpoint-dir", dir, "-checkpoint-every", "512")...)
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	// Kill as soon as the WAL has durably started growing past its meta
	// record; if the child outruns us and finishes, recovery of the complete
	// log is still exercised.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if fi, err := os.Stat(wal); err == nil && fi.Size() > 256 {
			break
		}
		time.Sleep(time.Millisecond)
	}
	cmd.Process.Kill()
	cmd.Wait()

	out, stderr, code := runChaos(t, bin, append(append([]string{}, args...), "-checkpoint-dir", dir, "-restore")...)
	if code != 0 {
		t.Fatalf("restore after SIGKILL: exit %d\nstderr: %s", code, stderr)
	}
	if out != wantOut {
		t.Fatalf("restore after SIGKILL diverged:\n--- want ---\n%s\n--- got ---\n%s", wantOut, out)
	}
}

// TestKillAtAndRestoreFragPolicies extends the process-level crash torture to
// the fragmentation-aware family: each policy is killed mid-run (hard
// os.Exit, no flush) and restored, and the restored output must be
// byte-identical to its uninterrupted run.
func TestKillAtAndRestoreFragPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	bin := buildChaos(t)
	for _, policy := range core.FragmentationAwareNames() {
		base := append([]string{"-policy", policy, "-json", "-metrics"}, chaosArgs...)
		wantOut, _, code := runChaos(t, bin, base...)
		if code != 0 {
			t.Fatalf("%s: reference run exited %d", policy, code)
		}
		for _, killAt := range []int64{1, 97} {
			dir := t.TempDir()
			args := append(append([]string{}, base...),
				"-checkpoint-dir", dir, "-checkpoint-every", "32", "-kill-at", strconv.FormatInt(killAt, 10))
			if _, stderr, code := runChaos(t, bin, args...); code != 3 {
				t.Fatalf("%s kill-at %d: exit %d, want 3\nstderr: %s", policy, killAt, code, stderr)
			}
			restore := append(append([]string{}, base...), "-checkpoint-dir", dir, "-restore")
			out, stderr, code := runChaos(t, bin, restore...)
			if code != 0 {
				t.Fatalf("%s restore after kill-at %d: exit %d\nstderr: %s", policy, killAt, code, stderr)
			}
			if out != wantOut {
				t.Fatalf("%s restore after kill-at %d diverged:\n--- want ---\n%s\n--- got ---\n%s", policy, killAt, wantOut, out)
			}
		}
	}
}
