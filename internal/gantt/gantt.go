package gantt

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"dvbp/internal/analysis"
	"dvbp/internal/core"
	"dvbp/internal/item"
)

// Options configures rendering.
type Options struct {
	// Width and Height of the SVG canvas (0 -> 900x depends on lanes).
	Width int
	// LaneHeight is the pixel height of one bin lane (0 -> 28).
	LaneHeight int
	// Title is drawn at the top.
	Title string
	// ShowItemIDs labels each item rectangle.
	ShowItemIDs bool
}

func (o Options) width() int {
	if o.Width > 0 {
		return o.Width
	}
	return 900
}

func (o Options) laneHeight() int {
	if o.LaneHeight > 0 {
		return o.LaneHeight
	}
	return 28
}

var itemPalette = []string{
	"#97bbf5", "#a8dcc8", "#f5d3a5", "#f2b8c0", "#d4c3ec",
	"#c5e3f0", "#e4e0a8", "#d9d9d9",
}

// Packing renders one lane per bin with item rectangles placed by their
// active interval.
func Packing(l *item.List, res *core.Result, opts Options) string {
	itemByID := make(map[int]item.Item, l.Len())
	for _, it := range l.Items {
		itemByID[it.ID] = it
	}
	lanes := make([]core.BinUsage, len(res.Bins))
	copy(lanes, res.Bins)
	sort.Slice(lanes, func(i, j int) bool { return lanes[i].BinID < lanes[j].BinID })

	hull := l.Hull()
	span := hull.Length()
	if span <= 0 {
		span = 1
	}
	const padL, padT, padR, padB = 70.0, 40.0, 20.0, 30.0
	lh := float64(opts.laneHeight())
	w := float64(opts.width())
	h := padT + lh*float64(len(lanes)) + padB
	plotW := w - padL - padR
	x := func(t float64) float64 { return padL + (t-hull.Lo)/span*plotW }

	var b strings.Builder
	header(&b, int(w), int(h), opts.Title)
	// Time axis.
	fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", padL, h-padB, w-padR, h-padB)
	for i := 0; i <= 10; i++ {
		t := hull.Lo + float64(i)/10*span
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="middle" font-size="10">%.3g</text>`+"\n", x(t), h-padB+14, t)
	}

	binItems := make(map[int][]int)
	for _, p := range res.Placements {
		binItems[p.BinID] = append(binItems[p.BinID], p.ItemID)
	}
	for li, bu := range lanes {
		y := padT + lh*float64(li)
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end" font-size="11">bin %d</text>`+"\n", padL-6, y+lh/2+4, bu.BinID)
		// Bin lifetime background.
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="#f4f4f4" stroke="#999"/>`+"\n",
			x(bu.OpenedAt), y+2, x(bu.ClosedAt)-x(bu.OpenedAt), lh-4)
		for k, id := range binItems[bu.BinID] {
			it := itemByID[id]
			col := itemPalette[k%len(itemPalette)]
			fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="%s" stroke="#555"/>`+"\n",
				x(it.Arrival), y+4, math.Max(1, x(it.Departure)-x(it.Arrival)), lh-8, col)
			if opts.ShowItemIDs {
				fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="9">%d</text>`+"\n", x(it.Arrival)+2, y+lh/2+3, id)
			}
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// MTFFigure1 renders the Figure 1 analogue: bin lanes with leading intervals
// drawn thick/red and non-leading intervals thin/blue, from a real Move To
// Front run instrumented with analysis.MTFDecomposition.
func MTFFigure1(l *item.List, res *core.Result, dec *analysis.MTFDecomposition, opts Options) string {
	lanes := make([]core.BinUsage, len(res.Bins))
	copy(lanes, res.Bins)
	sort.Slice(lanes, func(i, j int) bool { return lanes[i].BinID < lanes[j].BinID })

	hull := l.Hull()
	span := hull.Length()
	if span <= 0 {
		span = 1
	}
	const padL, padT, padR, padB = 70.0, 40.0, 20.0, 30.0
	lh := float64(opts.laneHeight())
	w := float64(opts.width())
	h := padT + lh*float64(len(lanes)) + padB
	plotW := w - padL - padR
	x := func(t float64) float64 { return padL + (t-hull.Lo)/span*plotW }

	segsByBin := make(map[int][][2]float64)
	for _, s := range dec.Segments() {
		if s.BinID >= 0 {
			segsByBin[s.BinID] = append(segsByBin[s.BinID], [2]float64{s.Interval.Lo, s.Interval.Hi})
		}
	}

	var b strings.Builder
	header(&b, int(w), int(h), opts.Title)
	for li, bu := range lanes {
		y := padT + lh*float64(li) + lh/2
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end" font-size="11">bin %d</text>`+"\n", padL-6, y+4, bu.BinID)
		// Whole usage period: thin blue (non-leading by default).
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#4269d0" stroke-width="2"/>`+"\n",
			x(bu.OpenedAt), y, x(bu.ClosedAt), y)
		// Leading intervals: thick red on top.
		for _, seg := range segsByBin[bu.BinID] {
			fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ff725c" stroke-width="6"/>`+"\n",
				x(seg[0]), y, x(seg[1]), y)
		}
	}
	legend(&b, padL, h-8, "thick/red = leading intervals P  ·  thin/blue = non-leading intervals Q")
	b.WriteString("</svg>\n")
	return b.String()
}

// FFFigure2 renders the Figure 2 analogue: each First Fit bin's usage period
// split into P_i (thin/blue) and Q_i (thick/red).
func FFFigure2(l *item.List, res *core.Result, opts Options) string {
	dec := analysis.FFDecompose(res)
	byBin := make(map[int]analysis.FFBinDecomposition, len(dec))
	for _, d := range dec {
		byBin[d.BinID] = d
	}
	lanes := make([]core.BinUsage, len(res.Bins))
	copy(lanes, res.Bins)
	sort.Slice(lanes, func(i, j int) bool { return lanes[i].BinID < lanes[j].BinID })

	hull := l.Hull()
	span := hull.Length()
	if span <= 0 {
		span = 1
	}
	const padL, padT, padR, padB = 70.0, 40.0, 20.0, 30.0
	lh := float64(opts.laneHeight())
	w := float64(opts.width())
	h := padT + lh*float64(len(lanes)) + padB
	plotW := w - padL - padR
	x := func(t float64) float64 { return padL + (t-hull.Lo)/span*plotW }

	var b strings.Builder
	header(&b, int(w), int(h), opts.Title)
	for li, bu := range lanes {
		y := padT + lh*float64(li) + lh/2
		d := byBin[bu.BinID]
		fmt.Fprintf(&b, `<text x="%g" y="%g" text-anchor="end" font-size="11">bin %d</text>`+"\n", padL-6, y+4, bu.BinID)
		if !d.P.Empty() {
			fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#4269d0" stroke-width="2"/>`+"\n",
				x(d.P.Lo), y, x(d.P.Hi), y)
		}
		if !d.Q.Empty() {
			fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="#ff725c" stroke-width="6"/>`+"\n",
				x(d.Q.Lo), y, x(d.Q.Hi), y)
		}
	}
	legend(&b, padL, h-8, "thin/blue = P (earlier bins still open)  ·  thick/red = Q (exclusive tail, Σℓ(Q) = span)")
	b.WriteString("</svg>\n")
	return b.String()
}

// LoadFigure3 renders the Figure 3 analogue: per-bin L∞ load as stacked bars
// at a chosen set of sample times (defaults: just after all arrivals of each
// distinct arrival instant).
func LoadFigure3(l *item.List, res *core.Result, sampleTimes []float64, opts Options) string {
	itemByID := make(map[int]item.Item, l.Len())
	for _, it := range l.Items {
		itemByID[it.ID] = it
	}
	binItems := make(map[int][]item.Item)
	maxBin := 0
	for _, p := range res.Placements {
		binItems[p.BinID] = append(binItems[p.BinID], itemByID[p.ItemID])
		if p.BinID > maxBin {
			maxBin = p.BinID
		}
	}
	if len(sampleTimes) == 0 {
		seen := map[float64]bool{}
		for _, it := range l.Items {
			if !seen[it.Arrival] {
				seen[it.Arrival] = true
				sampleTimes = append(sampleTimes, it.Arrival)
			}
		}
		sort.Float64s(sampleTimes)
	}

	const padL, padT, padR, padB = 50.0, 40.0, 20.0, 30.0
	panelH := 120.0
	w := float64(opts.width())
	h := padT + (panelH+24)*float64(len(sampleTimes)) + padB
	plotW := w - padL - padR
	barW := plotW / float64(maxBin+1)

	var b strings.Builder
	header(&b, int(w), int(h), opts.Title)
	for si, t := range sampleTimes {
		top := padT + (panelH+24)*float64(si)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="11">t = %.3g</text>`+"\n", padL, top-4, t)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="black"/>`+"\n", padL, top+panelH, w-padR, top+panelH)
		for bin := 0; bin <= maxBin; bin++ {
			// L∞ of the summed load (not the sum of norms).
			load := 0.0
			loads := make([]float64, l.Dim)
			for _, it := range binItems[bin] {
				if it.ActiveAt(t) {
					for j, s := range it.Size {
						loads[j] += s
					}
				}
			}
			for _, x := range loads {
				if x > load {
					load = x
				}
			}
			if load <= 0 {
				continue
			}
			bh := load * panelH
			fmt.Fprintf(&b, `<rect x="%g" y="%g" width="%g" height="%g" fill="#97bbf5" stroke="#555"/>`+"\n",
				padL+float64(bin)*barW+1, top+panelH-bh, math.Max(1, barW-2), bh)
		}
	}
	b.WriteString("</svg>\n")
	return b.String()
}

func header(b *strings.Builder, w, h int, title string) {
	fmt.Fprintf(b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" font-family="sans-serif">`+"\n", w, h)
	fmt.Fprintf(b, `<rect width="%d" height="%d" fill="white"/>`+"\n", w, h)
	if title != "" {
		fmt.Fprintf(b, `<text x="16" y="22" font-size="14" font-weight="bold">%s</text>`+"\n", escape(title))
	}
}

func legend(b *strings.Builder, x, y float64, text string) {
	fmt.Fprintf(b, `<text x="%g" y="%g" font-size="10" fill="#555">%s</text>`+"\n", x, y, escape(text))
}

func escape(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;")
	return r.Replace(s)
}
