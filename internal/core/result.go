package core

import (
	"fmt"
	"sort"
	"strings"
)

// Placement records where one item was packed.
type Placement struct {
	ItemID int
	BinID  int
	// Opened reports whether packing this item opened a new bin.
	Opened bool
	// Time is the packing (arrival) time.
	Time float64
}

// BinUsage summarises one bin's lifetime: a single usage interval, per the
// paper's w.l.o.g. normalisation.
type BinUsage struct {
	BinID    int
	OpenedAt float64
	ClosedAt float64
	// Packed is the number of items the bin ever held.
	Packed int
}

// Usage returns the bin's contribution to the packing cost.
func (u BinUsage) Usage() float64 { return u.ClosedAt - u.OpenedAt }

// Result is the outcome of one simulation run.
type Result struct {
	// Algorithm is the policy name.
	Algorithm string
	// Dim is the number of resource dimensions.
	Dim int
	// Items is the number of items packed.
	Items int
	// Cost is the MinUsageTime objective: Σ_bins (closed - opened).
	Cost float64
	// BinsOpened is the total number of bins ever opened.
	BinsOpened int
	// MaxConcurrentBins is the peak number of simultaneously open bins.
	MaxConcurrentBins int
	// Placements maps each item (by index in input order of IDs) to its bin.
	Placements []Placement
	// Bins holds per-bin usage records, ascending by BinID.
	Bins []BinUsage
	// Span is span(R) for the input, recorded for convenience (cost of an
	// idealised single-bin packing; also the Lemma 1(iii) lower bound).
	Span float64
	// Mu is the max/min duration ratio of the input.
	Mu float64
}

// PlacementOf returns the placement record for an item ID (ok=false if the
// item is unknown).
func (r *Result) PlacementOf(itemID int) (Placement, bool) {
	for _, p := range r.Placements {
		if p.ItemID == itemID {
			return p, true
		}
	}
	return Placement{}, false
}

// BinItems returns, for each bin ID, the item IDs packed into it in packing
// order.
func (r *Result) BinItems() map[int][]int {
	m := make(map[int][]int)
	for _, p := range r.Placements {
		m[p.BinID] = append(m[p.BinID], p.ItemID)
	}
	return m
}

// NormalizedCost returns Cost / lb, the experimental performance measure the
// paper plots in Figure 4 (lb is a lower bound on OPT). It panics if lb <= 0.
func (r *Result) NormalizedCost(lb float64) float64 {
	if lb <= 0 {
		panic("core: non-positive lower bound")
	}
	return r.Cost / lb
}

// String renders a human-readable summary.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: d=%d items=%d bins=%d peak=%d cost=%.4f span=%.4f",
		r.Algorithm, r.Dim, r.Items, r.BinsOpened, r.MaxConcurrentBins, r.Cost, r.Span)
	return b.String()
}

// sortBins normalises Bins/Placements ordering for deterministic output.
func (r *Result) sortBins() {
	sort.Slice(r.Bins, func(i, j int) bool { return r.Bins[i].BinID < r.Bins[j].BinID })
	sort.Slice(r.Placements, func(i, j int) bool {
		if r.Placements[i].Time != r.Placements[j].Time {
			return r.Placements[i].Time < r.Placements[j].Time
		}
		return r.Placements[i].ItemID < r.Placements[j].ItemID
	})
}
