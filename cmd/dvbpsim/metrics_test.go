package main

import (
	"encoding/json"
	"fmt"
	"os/exec"
	"strings"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/metrics"
	"dvbp/internal/workload"
)

// runSelf builds and runs this command with the given arguments, returning
// its combined output.
func runSelf(t *testing.T, args ...string) string {
	t.Helper()
	out, err := exec.Command("go", append([]string{"run", "."}, args...)...).CombinedOutput()
	if err != nil {
		t.Fatalf("go run . %v: %v\n%s", args, err, out)
	}
	return string(out)
}

// extractJSONSnapshot parses the JSON section of a -metrics dump.
func extractJSONSnapshot(t *testing.T, out string) metrics.Snapshot {
	t.Helper()
	const begin = "== metrics (json) ==\n"
	const end = "\n== metrics (prometheus)"
	i := strings.Index(out, begin)
	j := strings.Index(out, end)
	if i < 0 || j < 0 || j < i {
		t.Fatalf("no metrics JSON section in output:\n%s", out)
	}
	var s metrics.Snapshot
	if err := json.Unmarshal([]byte(out[i+len(begin):j]), &s); err != nil {
		t.Fatalf("unmarshal metrics JSON: %v", err)
	}
	return s
}

// TestMetricsFlagMatchesResult is the acceptance check for -metrics: the
// JSON and Prometheus snapshots the command emits must agree exactly with
// the Result of an identical in-process simulation on the same fixed-seed
// workload.
func TestMetricsFlagMatchesResult(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	out := runSelf(t, "-d", "2", "-n", "200", "-mu", "5", "-T", "100", "-B", "100",
		"-seed", "7", "-policy", "FirstFit", "-bracket=false", "-metrics")

	// Reproduce the run in-process to obtain the ground truth.
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 200, Mu: 5, T: 100, B: 100}, 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.NewPolicy("FirstFit", 7)
	if err != nil {
		t.Fatal(err)
	}
	col := metrics.NewCollector()
	res, err := core.Simulate(l, p, core.WithObserver(col))
	if err != nil {
		t.Fatal(err)
	}
	want := col.Snapshot()

	got := extractJSONSnapshot(t, out)
	for _, name := range []string{
		metrics.MetricItemsPlaced, metrics.MetricBinsOpened, metrics.MetricBinsClosed,
		metrics.MetricFitChecks, metrics.MetricOpenBins, metrics.MetricOpenBinsPeak,
		metrics.MetricUsageTime,
	} {
		g, ok := got.Find(name)
		if !ok {
			t.Fatalf("metric %s missing from command output", name)
		}
		w, _ := want.Find(name)
		if g.Value != w.Value {
			t.Errorf("%s = %v from command, want %v", name, g.Value, w.Value)
		}
	}

	// Counters must equal the Result fields, not just the reference
	// collector (guards against a bug shared by both collectors).
	if g, _ := got.Find(metrics.MetricItemsPlaced); g.Value != float64(res.Items) {
		t.Errorf("items placed = %v, Result.Items = %d", g.Value, res.Items)
	}
	if g, _ := got.Find(metrics.MetricBinsOpened); g.Value != float64(res.BinsOpened) {
		t.Errorf("bins opened = %v, Result.BinsOpened = %d", g.Value, res.BinsOpened)
	}
	if g, _ := got.Find(metrics.MetricOpenBinsPeak); g.Value != float64(res.MaxConcurrentBins) {
		t.Errorf("open bins peak = %v, Result.MaxConcurrentBins = %d", g.Value, res.MaxConcurrentBins)
	}
	if g, _ := got.Find(metrics.MetricUsageTime); g.Value != res.Cost {
		t.Errorf("usage time = %v, Result.Cost = %v", g.Value, res.Cost)
	}

	// The same counters must appear verbatim in the Prometheus exposition.
	for _, name := range []string{metrics.MetricItemsPlaced, metrics.MetricBinsOpened, metrics.MetricFitChecks} {
		w, _ := want.Find(name)
		line := fmt.Sprintf("%s %d\n", name, int64(w.Value))
		if !strings.Contains(out, line) {
			t.Errorf("prometheus output missing %q", strings.TrimSpace(line))
		}
	}

	// The fit-check histogram's total must agree with the counter.
	gh, ok := got.Find(metrics.MetricFitChecksPerSelect)
	if !ok {
		t.Fatal("fit-check histogram missing")
	}
	gc, _ := got.Find(metrics.MetricFitChecks)
	if gh.Sum != gc.Value {
		t.Errorf("fit-check histogram sum %v != counter %v", gh.Sum, gc.Value)
	}
}

// TestMetricsFlagAllPolicies checks the per-policy labelled dumps of -all.
func TestMetricsFlagAllPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	out := runSelf(t, "-d", "1", "-n", "60", "-mu", "4", "-T", "60", "-B", "10",
		"-seed", "3", "-all", "-bracket=false", "-metrics")
	for _, p := range core.PolicyNames() {
		if !strings.Contains(out, "== metrics (json): "+p+" ==") {
			t.Errorf("missing labelled metrics dump for %s", p)
		}
	}
}
