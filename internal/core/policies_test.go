package core

import (
	"math"
	"testing"

	"dvbp/internal/item"
)

// --- First Fit / Last Fit ------------------------------------------------

func TestFirstFitPicksEarliestOpenBin(t *testing.T) {
	// Three long-lived anchors force three bins; then a small item arrives
	// which fits in all three: First Fit must take bin 0, Last Fit bin 2.
	mk := func() [][]float64 {
		return [][]float64{
			{0, 10, 0.6},
			{0, 10, 0.6},
			{0, 10, 0.6},
			{1, 2, 0.2},
		}
	}
	resFF := mustSimulate(t, list(t, 1, mk()...), NewFirstFit())
	if p, _ := resFF.PlacementOf(3); p.BinID != 0 {
		t.Errorf("FirstFit put probe in bin %d, want 0", p.BinID)
	}
	resLF := mustSimulate(t, list(t, 1, mk()...), NewLastFit())
	if p, _ := resLF.PlacementOf(3); p.BinID != 2 {
		t.Errorf("LastFit put probe in bin %d, want 2", p.BinID)
	}
}

func TestFirstFitSkipsFullBins(t *testing.T) {
	l := list(t, 1,
		[]float64{0, 10, 0.9}, // bin 0, nearly full
		[]float64{0, 10, 0.5}, // bin 1
		[]float64{1, 2, 0.3},  // fits only bin 1
	)
	res := mustSimulate(t, l, NewFirstFit())
	if p, _ := res.PlacementOf(2); p.BinID != 1 {
		t.Errorf("probe in bin %d, want 1", p.BinID)
	}
}

// --- Next Fit --------------------------------------------------------------

func TestNextFitSingleCurrentBin(t *testing.T) {
	// Items 0,1 fit together; item 2 doesn't fit with them -> new current
	// bin; item 3 would fit in bin 0 but Next Fit must not look back.
	l := list(t, 1,
		[]float64{0, 10, 0.4},
		[]float64{0, 10, 0.4},
		[]float64{0, 10, 0.4}, // doesn't fit bin 0 (1.2) -> bin 1
		[]float64{0, 10, 0.2}, // fits bin 0, but current is bin 1
	)
	res := mustSimulate(t, l, NewNextFit())
	if res.BinsOpened != 2 {
		t.Fatalf("BinsOpened = %d, want 2", res.BinsOpened)
	}
	if p, _ := res.PlacementOf(3); p.BinID != 1 {
		t.Errorf("NextFit looked back: probe in bin %d, want 1", p.BinID)
	}
}

func TestNextFitReleasedBinNeverReceives(t *testing.T) {
	l := list(t, 1,
		[]float64{0, 100, 0.6}, // bin 0 current
		[]float64{1, 100, 0.6}, // doesn't fit -> bin 1 current, bin 0 released
		[]float64{2, 3, 0.1},   // fits both, must go to bin 1
		[]float64{4, 5, 0.1},   // same
	)
	res := mustSimulate(t, l, NewNextFit())
	for _, id := range []int{2, 3} {
		if p, _ := res.PlacementOf(id); p.BinID != 1 {
			t.Errorf("item %d in bin %d, want 1 (released bins are dead)", id, p.BinID)
		}
	}
}

func TestNextFitCurrentBinClosureResets(t *testing.T) {
	// Current bin closes by departure; next arrival must open a fresh bin
	// even though no rejection happened.
	l := list(t, 1,
		[]float64{0, 1, 0.5}, // bin 0 opens, closes at t=1
		[]float64{2, 3, 0.5}, // arrives after close -> bin 1
	)
	res := mustSimulate(t, l, NewNextFit())
	if res.BinsOpened != 2 {
		t.Fatalf("BinsOpened = %d, want 2", res.BinsOpened)
	}
}

// --- Best Fit / Worst Fit ----------------------------------------------------

func TestBestFitPicksMostLoaded(t *testing.T) {
	l := list(t, 1,
		[]float64{0, 10, 0.7}, // bin 0 at 0.7
		[]float64{0, 10, 0.3}, // fits bin 0 exactly: 0.7+0.3=1.0 -> BF puts in bin 0!
	)
	// Careful: 0.3 fits bin 0. Use sizes so second item opens its own bin.
	res := mustSimulate(t, l, NewBestFit(MaxLoad()))
	if res.BinsOpened != 1 {
		t.Fatalf("BinsOpened = %d (0.7+0.3 should fit one bin)", res.BinsOpened)
	}

	l2 := list(t, 1,
		[]float64{0, 10, 0.7}, // bin 0 at 0.7
		[]float64{0, 10, 0.5}, // doesn't fit -> bin 1 at 0.5
		[]float64{1, 2, 0.2},  // fits both; BF -> bin 0 (0.7), WF -> bin 1 (0.5)
	)
	resBF := mustSimulate(t, l2, NewBestFit(MaxLoad()))
	if p, _ := resBF.PlacementOf(2); p.BinID != 0 {
		t.Errorf("BestFit probe in bin %d, want 0", p.BinID)
	}
	resWF := mustSimulate(t, l2.Clone(), NewWorstFit(MaxLoad()))
	if p, _ := resWF.PlacementOf(2); p.BinID != 1 {
		t.Errorf("WorstFit probe in bin %d, want 1", p.BinID)
	}
}

func TestBestFitLoadMeasuresDiffer(t *testing.T) {
	// Bin 0 load (0.8, 0.0): Linf=0.8, L1=0.8.
	// Bin 1 load (0.5, 0.5): Linf=0.5, L1=1.0.
	// Probe (0.1, 0.1) fits both. BF-Linf -> bin 0; BF-L1 -> bin 1.
	mk := func() [][]float64 {
		return [][]float64{
			{0, 10, 0.8, 0.0},
			{0, 10, 0.5, 0.5}, // conflicts dim0: 0.8+0.5>1 -> bin 1
			{1, 2, 0.1, 0.1},
		}
	}
	resInf := mustSimulate(t, list(t, 2, mk()...), NewBestFit(MaxLoad()))
	if p, _ := resInf.PlacementOf(2); p.BinID != 0 {
		t.Errorf("BF-Linf probe in bin %d, want 0", p.BinID)
	}
	resL1 := mustSimulate(t, list(t, 2, mk()...), NewBestFit(SumLoad()))
	if p, _ := resL1.PlacementOf(2); p.BinID != 1 {
		t.Errorf("BF-L1 probe in bin %d, want 1", p.BinID)
	}
	resL2 := mustSimulate(t, list(t, 2, mk()...), NewBestFit(PNormLoad(2)))
	// ‖(0.8,0)‖2 = 0.8 > ‖(0.5,0.5)‖2 ≈ 0.707 -> bin 0.
	if p, _ := resL2.PlacementOf(2); p.BinID != 0 {
		t.Errorf("BF-L2 probe in bin %d, want 0", p.BinID)
	}
}

func TestBestFitTieBreaksToEarliestBin(t *testing.T) {
	l := list(t, 1,
		[]float64{0, 10, 0.6},
		[]float64{0, 10, 0.6},
		[]float64{1, 2, 0.2},
	)
	res := mustSimulate(t, l, NewBestFit(MaxLoad()))
	if p, _ := res.PlacementOf(2); p.BinID != 0 {
		t.Errorf("tie-break: probe in bin %d, want 0", p.BinID)
	}
}

// --- Move To Front ---------------------------------------------------------

func TestMoveToFrontPrefersRecentlyUsedBin(t *testing.T) {
	// Bins 0 and 1 both fit the probe. Bin 1 was used most recently (it was
	// opened last), so MTF packs there; FF would pick bin 0.
	l := list(t, 1,
		[]float64{0, 10, 0.6}, // bin 0
		[]float64{1, 10, 0.6}, // bin 1 (most recent)
		[]float64{2, 3, 0.2},  // probe
	)
	res := mustSimulate(t, l, NewMoveToFront())
	if p, _ := res.PlacementOf(2); p.BinID != 1 {
		t.Errorf("MTF probe in bin %d, want 1", p.BinID)
	}
}

func TestMoveToFrontUpdatesLeaderOnPack(t *testing.T) {
	// After packing the probe into bin 1, bin 1 stays leader; pack into bin 0
	// only possible when bin 1 full. Then bin 0 becomes leader and receives
	// the following probe.
	l := list(t, 1,
		[]float64{0, 100, 0.5}, // bin 0
		[]float64{1, 100, 0.7}, // bin 1, leader
		[]float64{2, 100, 0.4}, // fits only bin 0 (bin1 at 0.7+0.4>1) -> bin 0 becomes leader
		[]float64{3, 4, 0.05},  // fits both; leader bin 0 takes it
	)
	res := mustSimulate(t, l, NewMoveToFront())
	if p, _ := res.PlacementOf(3); p.BinID != 0 {
		t.Errorf("probe in bin %d, want leader bin 0", p.BinID)
	}
}

func TestMoveToFrontReproducesTheorem8Pattern(t *testing.T) {
	// The Theorem 8 sequence with n=2: 8 items at t=0; odd-indexed size 1/2
	// duration 1; even-indexed size 1/(2n)=1/4 duration mu.
	// MTF creates 2n=4 bins, each holding one odd + one even item.
	const mu = 5.0
	l := item.NewList(1)
	for i := 1; i <= 8; i++ {
		if i%2 == 1 {
			l.Add(0, 1, v(0.5))
		} else {
			l.Add(0, mu, v(0.25))
		}
	}
	res := mustSimulate(t, l, NewMoveToFront())
	if res.BinsOpened != 4 {
		t.Fatalf("BinsOpened = %d, want 2n = 4", res.BinsOpened)
	}
	if res.Cost != 4*mu {
		t.Errorf("Cost = %v, want %v", res.Cost, 4*mu)
	}
}

// --- Random Fit --------------------------------------------------------------

func TestRandomFitIsAnyFit(t *testing.T) {
	// With one open bin that fits, RandomFit must use it (never opens).
	l := list(t, 1,
		[]float64{0, 10, 0.3},
		[]float64{1, 2, 0.3},
		[]float64{3, 4, 0.3},
	)
	res := mustSimulate(t, l, NewRandomFit(1))
	if res.BinsOpened != 1 {
		t.Errorf("BinsOpened = %d, want 1 (Any Fit property)", res.BinsOpened)
	}
}

func TestRandomFitSeedDeterminism(t *testing.T) {
	l := randomList(7, 300, 2, 20)
	a := mustSimulate(t, l, NewRandomFit(5))
	b := mustSimulate(t, l, NewRandomFit(5))
	if a.Cost != b.Cost {
		t.Errorf("same seed, different cost: %v vs %v", a.Cost, b.Cost)
	}
	c := mustSimulate(t, l, NewRandomFit(6))
	// Different seeds *may* coincide but on 300 items it's vanishingly
	// unlikely; treat as smoke test.
	if a.Cost == c.Cost {
		t.Logf("note: different seeds produced same cost %v", a.Cost)
	}
}

func TestRandomFitSpreadsChoices(t *testing.T) {
	// Two bins always fit the probes; over many probes both must be used.
	l := item.NewList(1)
	l.Add(0, 1000, v(0.4)) // bin 0
	l.Add(0, 1000, v(0.4)) // doesn't fit? 0.4+0.4=0.8 fits! Make it bigger.
	res := mustSimulate(t, l, NewRandomFit(1))
	_ = res
	l2 := item.NewList(1)
	l2.Add(0, 1000, v(0.7)) // bin 0
	l2.Add(0, 1000, v(0.7)) // bin 1
	for i := 0; i < 40; i++ {
		a := float64(i + 1)
		l2.Add(a, a+1, v(0.05))
	}
	res2 := mustSimulate(t, l2, NewRandomFit(3))
	used := make(map[int]int)
	for _, p := range res2.Placements[2:] {
		used[p.BinID]++
	}
	if used[0] == 0 || used[1] == 0 {
		t.Errorf("RandomFit never used one of the bins: %v", used)
	}
}

// --- Registry ---------------------------------------------------------------

func TestNewPolicyRegistry(t *testing.T) {
	for _, name := range PolicyNames() {
		p, err := NewPolicy(name, 1)
		if err != nil {
			t.Errorf("NewPolicy(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("NewPolicy(%q).Name() = %q", name, p.Name())
		}
	}
	aliases := map[string]string{
		"ff": "FirstFit", "nf": "NextFit", "bf": "BestFit", "wf": "WorstFit",
		"lf": "LastFit", "rf": "RandomFit", "mtf": "MoveToFront",
		"bestfit-l1": "BestFit-L1", "bestfit-lp2": "BestFit-Lp2",
		"bestfit-lp2.0": "BestFit-Lp2", "bestfit-lp2.25": "BestFit-Lp2.25",
		"worstfit-lp3": "WorstFit-Lp3", "worstfit-lp3.0": "WorstFit-Lp3",
		// +Inf is the max norm: explicit handling maps it to the canonical
		// Linf measure rather than a distinct "Lp+Inf" spelling.
		"bestfit-lp+inf": "BestFit",
	}
	for alias, want := range aliases {
		p, err := NewPolicy(alias, 1)
		if err != nil {
			t.Errorf("NewPolicy(%q): %v", alias, err)
			continue
		}
		if p.Name() != want {
			t.Errorf("NewPolicy(%q).Name() = %q, want %q", alias, p.Name(), want)
		}
	}
	if _, err := NewPolicy("nope", 1); err == nil {
		t.Error("unknown policy: want error")
	}
	if _, err := NewPolicy("bestfit-lp0.5", 1); err == nil {
		t.Error("invalid p: want error")
	}
}

func TestStandardPolicies(t *testing.T) {
	ps := StandardPolicies(1)
	if len(ps) != 7 {
		t.Fatalf("StandardPolicies = %d policies", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name()] {
			t.Errorf("duplicate policy %s", p.Name())
		}
		seen[p.Name()] = true
	}
}

func TestSortedPolicyNames(t *testing.T) {
	ns := SortedPolicyNames()
	for i := 1; i < len(ns); i++ {
		if ns[i-1] >= ns[i] {
			t.Fatalf("not sorted: %v", ns)
		}
	}
}

func TestPNormLoadPanicsBelow1(t *testing.T) {
	for _, p := range []float64{0.5, 0, -1, math.NaN(), math.Inf(-1)} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("PNormLoad(%v): want panic", p)
				}
			}()
			PNormLoad(p)
		}()
	}
}

// TestPNormLoadNameRoundTrips pins the Lp naming fix: names carry the exact
// p (no %.1f truncation), so distinct measures never collide and every name
// rebuilds the same measure through the registry.
func TestPNormLoadNameRoundTrips(t *testing.T) {
	cases := map[float64]string{
		1:      "Lp1",
		2:      "Lp2",
		2.2:    "Lp2.2",
		2.25:   "Lp2.25",
		3:      "Lp3",
		10.125: "Lp10.125",
	}
	for p, want := range cases {
		if got := PNormLoad(p).Name(); got != want {
			t.Errorf("PNormLoad(%v).Name() = %q, want %q", p, got, want)
		}
	}
	if PNormLoad(2.25).Name() == PNormLoad(2.2).Name() {
		t.Error("distinct p values collide in the measure name")
	}
	if got := PNormLoad(math.Inf(1)).Name(); got != "Linf" {
		t.Errorf("PNormLoad(+Inf).Name() = %q, want Linf (max norm)", got)
	}
}
