// Package report renders experiment results as aligned ASCII tables, CSV
// files and standalone SVG line charts — the machinery cmd/dvbpbench uses to
// regenerate the paper's tables and figures.
//
// Table is the central type: a titled grid of string cells that renders as a
// box-drawn ASCII table (Render) or as CSV (WriteCSV). F formats floats with
// the four-significant-digit convention used throughout the repo's output.
//
// Chart builds minimal dependency-free SVG line charts (one series per
// policy, log-scale x for the μ sweeps) so figure artefacts can be produced
// without a plotting stack.
//
// MetricsTable and WriteMetrics bridge to internal/metrics: they render a
// metrics.Snapshot as a table plus its JSON and Prometheus-text expositions,
// letting the commands dump engine telemetry next to their result tables.
package report
