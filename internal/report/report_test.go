package report

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
)

func sampleTable() *Table {
	t := &Table{
		Title:   "Example",
		Headers: []string{"alg", "ratio", "stddev"},
	}
	t.AddRow("MoveToFront", "1.05", "0.01")
	t.AddRow("FirstFit", "1.10", "0.02")
	return t
}

func TestTableRender(t *testing.T) {
	out := sampleTable().Render()
	for _, want := range []string{"Example", "alg", "MoveToFront", "1.10", "+--"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Title + border + header + border + 2 rows + border = 7 lines.
	if len(lines) != 7 {
		t.Errorf("Render produced %d lines, want 7:\n%s", len(lines), out)
	}
	// All border lines must have equal width.
	var borders []string
	for _, l := range lines {
		if strings.HasPrefix(l, "+") {
			borders = append(borders, l)
		}
	}
	for _, b := range borders[1:] {
		if len(b) != len(borders[0]) {
			t.Error("border widths differ")
		}
	}
}

func TestTableAddRowPads(t *testing.T) {
	tbl := &Table{Headers: []string{"a", "b", "c"}}
	tbl.AddRow("only")
	if len(tbl.Rows[0]) != 3 {
		t.Errorf("row not padded: %v", tbl.Rows[0])
	}
}

func TestTableCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTable().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := "alg,ratio,stddev\nMoveToFront,1.05,0.01\nFirstFit,1.10,0.02\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableMarkdown(t *testing.T) {
	md := sampleTable().Markdown()
	for _, want := range []string{"**Example**", "| alg | ratio | stddev |", "|---|---|---|", "| MoveToFront | 1.05 | 0.01 |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown missing %q:\n%s", want, md)
		}
	}
	// Short rows are padded to header width.
	tbl := &Table{Headers: []string{"a", "b"}}
	tbl.AddRow("x")
	if !strings.Contains(tbl.Markdown(), "| x |  |") {
		t.Errorf("Markdown padding wrong:\n%s", tbl.Markdown())
	}
}

func TestF(t *testing.T) {
	if F(1.23456) != "1.235" {
		t.Errorf("F = %q", F(1.23456))
	}
	if F(100000) != "1e+05" {
		t.Errorf("F = %q", F(100000.0))
	}
}

func sampleChart() *Chart {
	return &Chart{
		Title:  "ratios",
		XLabel: "mu",
		YLabel: "cost/LB",
		LogX:   true,
		Series: []Series{
			{Name: "MTF", X: []float64{1, 10, 100}, Y: []float64{1.0, 1.1, 1.2}, YErr: []float64{0.01, 0.02, 0.03}},
			{Name: "FF", X: []float64{1, 10, 100}, Y: []float64{1.1, 1.2, 1.3}},
		},
	}
}

func TestChartSVG(t *testing.T) {
	svg := sampleChart().SVG()
	for _, want := range []string{"<svg", "</svg>", "polyline", "ratios", "MTF", "FF", "circle", "cost/LB"} {
		if !strings.Contains(svg, want) {
			t.Errorf("SVG missing %q", want)
		}
	}
	// Two polylines (one per series).
	if n := strings.Count(svg, "<polyline"); n != 2 {
		t.Errorf("%d polylines, want 2", n)
	}
	// Error bars only for the first series: 3 semi-transparent lines.
	if n := strings.Count(svg, `stroke-opacity="0.5"`); n != 3 {
		t.Errorf("%d error bars, want 3", n)
	}
}

func TestChartEmptyAndDegenerate(t *testing.T) {
	empty := &Chart{Title: "none"}
	if !strings.Contains(empty.SVG(), "</svg>") {
		t.Error("empty chart should still render")
	}
	flat := &Chart{Series: []Series{{Name: "s", X: []float64{1, 1}, Y: []float64{2, 2}}}}
	if !strings.Contains(flat.SVG(), "polyline") {
		t.Error("degenerate chart should render a line")
	}
}

func TestChartEscapesMarkup(t *testing.T) {
	c := &Chart{Title: "a<b&c", Series: []Series{{Name: "x>y", X: []float64{0}, Y: []float64{0}}}}
	svg := c.SVG()
	if strings.Contains(svg, "a<b&c") || strings.Contains(svg, "x>y") {
		t.Error("unescaped markup in SVG")
	}
	if !strings.Contains(svg, "a&lt;b&amp;c") {
		t.Error("expected escaped title")
	}
}

func TestChartLogXMonotone(t *testing.T) {
	// In log-x, spacing between 1,10,100 must be equal. Extract circle cx
	// positions of the first series.
	svg := sampleChart().SVG()
	var xs []float64
	for _, line := range strings.Split(svg, "\n") {
		if strings.HasPrefix(line, "<circle") {
			var cx, cy, r float64
			if _, err := fmt.Sscanf(line, `<circle cx="%g" cy="%g" r="%g"`, &cx, &cy, &r); err == nil {
				xs = append(xs, cx)
			}
		}
	}
	if len(xs) < 3 {
		t.Fatalf("found %d circles", len(xs))
	}
	d1, d2 := xs[1]-xs[0], xs[2]-xs[1]
	if d1 <= 0 || d2 <= 0 || math.Abs(d1-d2) > 1.5 {
		t.Errorf("log spacing not uniform: %v vs %v", d1, d2)
	}
}
