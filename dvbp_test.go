package dvbp_test

import (
	"math"
	"testing"

	"dvbp"
)

func TestQuickstartFlow(t *testing.T) {
	l := dvbp.NewList(2)
	l.Add(0, 10, dvbp.Vec(0.5, 0.25))
	l.Add(1, 4, dvbp.Vec(0.5, 0.5))
	res, err := dvbp.Simulate(l, dvbp.NewMoveToFront())
	if err != nil {
		t.Fatal(err)
	}
	if res.BinsOpened != 1 {
		t.Errorf("BinsOpened = %d, want 1", res.BinsOpened)
	}
	if math.Abs(res.Cost-10) > 1e-9 {
		t.Errorf("Cost = %v, want 10", res.Cost)
	}
	b := dvbp.LowerBounds(l)
	if res.Cost < b.Best()-1e-9 {
		t.Errorf("cost below lower bound")
	}
}

func TestFacadeConstructors(t *testing.T) {
	l := dvbp.NewList(1)
	l.Add(0, 2, dvbp.Vec(0.6))
	l.Add(0, 2, dvbp.Vec(0.6))
	policies := []dvbp.Policy{
		dvbp.NewMoveToFront(), dvbp.NewFirstFit(), dvbp.NewNextFit(),
		dvbp.NewBestFit(), dvbp.NewWorstFit(), dvbp.NewLastFit(), dvbp.NewRandomFit(1),
	}
	for _, p := range policies {
		res, err := dvbp.Simulate(l, p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if res.BinsOpened != 2 {
			t.Errorf("%s: bins = %d, want 2", p.Name(), res.BinsOpened)
		}
	}
	if len(dvbp.PolicyNames()) != 7 || len(dvbp.StandardPolicies(1)) != 7 {
		t.Error("policy registry size mismatch")
	}
	if _, err := dvbp.NewPolicy("mtf", 0); err != nil {
		t.Errorf("NewPolicy: %v", err)
	}
}

func TestFacadeClairvoyant(t *testing.T) {
	l := dvbp.NewList(1)
	l.Add(0, 1, dvbp.Vec(0.4))
	l.Add(0, 64, dvbp.Vec(0.4))
	res, err := dvbp.Simulate(l, dvbp.NewDurationClassFit(), dvbp.WithClairvoyance())
	if err != nil {
		t.Fatal(err)
	}
	if res.BinsOpened != 2 {
		t.Errorf("class separation: bins = %d, want 2", res.BinsOpened)
	}
	if _, err := dvbp.Simulate(l, dvbp.NewAlignedBestFit(), dvbp.WithClairvoyance()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeWorkloadAndBracket(t *testing.T) {
	l, err := dvbp.UniformWorkload(dvbp.UniformConfig{D: 2, N: 100, Mu: 10, T: 100, B: 100}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lb := dvbp.LowerBounds(l).Best()
	up, err := dvbp.OfflineBestEstimate(l)
	if err != nil {
		t.Fatal(err)
	}
	if lb > up.Cost+1e-9 {
		t.Errorf("bracket inverted: LB %v > UB %v", lb, up.Cost)
	}
	res, err := dvbp.Simulate(l, dvbp.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost < lb-1e-9 {
		t.Error("online cost below LB")
	}
}

func TestFacadeAdversarial(t *testing.T) {
	in, err := dvbp.TheoremFiveInstance(2, 8, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := dvbp.Simulate(in.List, dvbp.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if in.MeasuredRatio(res.Cost) <= 1 {
		t.Error("adversarial ratio should exceed 1")
	}
	if _, err := dvbp.TheoremSixInstance(1, 4, 5); err != nil {
		t.Fatal(err)
	}
	if _, err := dvbp.TheoremEightInstance(4, 5); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeCloud(t *testing.T) {
	cfg := dvbp.CloudConfig{
		Capacity: dvbp.Vec(64, 256),
		Policy:   dvbp.NewMoveToFront(),
		Billing:  dvbp.CloudBilling{Quantum: 1, PricePerUnit: 2},
	}
	reqs := []dvbp.CloudRequest{
		{ID: 1, Arrive: 0, Duration: 1.5, Demand: dvbp.Vec(32, 64)},
		{ID: 2, Arrive: 0.5, Duration: 1, Demand: dvbp.Vec(16, 64)},
	}
	rep, err := dvbp.RunCloud(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServersRented != 1 {
		t.Errorf("servers = %d, want 1", rep.ServersRented)
	}
	if rep.BilledCost != 4 { // 1.5h usage -> 2 started hours * 2
		t.Errorf("billed = %v, want 4", rep.BilledCost)
	}
	reports, err := dvbp.CompareCloud(cfg, reqs, dvbp.StandardPolicies(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 7 {
		t.Errorf("reports = %d", len(reports))
	}
}

func TestFacadeAudit(t *testing.T) {
	l := dvbp.NewList(1)
	l.Add(0, 1, dvbp.Vec(0.5))
	l.Add(0, 1, dvbp.Vec(0.6))
	var a dvbp.Audit
	if _, err := dvbp.Simulate(l, dvbp.NewFirstFit(), dvbp.WithAudit(&a)); err != nil {
		t.Fatal(err)
	}
	if len(a.Decisions) != 2 || a.NewBinOpenings() != 2 {
		t.Errorf("audit: %d decisions, %d openings", len(a.Decisions), a.NewBinOpenings())
	}
}

func TestFacadeObserver(t *testing.T) {
	var obs countingObserver
	l := dvbp.NewList(1)
	l.Add(0, 2, dvbp.Vec(0.6))
	l.Add(0, 2, dvbp.Vec(0.6))
	res, err := dvbp.Simulate(l, dvbp.NewFirstFit(), dvbp.WithObserver(&obs))
	if err != nil {
		t.Fatal(err)
	}
	if obs.packed != res.Items || res.Items != 2 {
		t.Errorf("observer saw %d placements, Result.Items = %d", obs.packed, res.Items)
	}
}

// countingObserver embeds BaseObserver so it only overrides AfterPack,
// exercising the re-exported facade types.
type countingObserver struct {
	dvbp.BaseObserver
	packed int
}

func (o *countingObserver) AfterPack(dvbp.Request, *dvbp.Bin, bool) { o.packed++ }
