package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"dvbp/internal/experiments"
	"dvbp/internal/metrics"
)

// TestMetricsFlagMatchesExperiment is the acceptance check for -metrics:
// the aggregate metrics.json the command writes must match, counter for
// counter, a fresh in-process run of the identical experiment observed by
// our own collector on the same fixed seed.
func TestMetricsFlagMatchesExperiment(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	dir := t.TempDir()
	out, err := exec.Command("go", "run", ".",
		"-experiment", "fig4", "-instances", "1", "-workers", "1",
		"-d", "2", "-mus", "1,2", "-seed", "3", "-out", dir, "-metrics",
		"-cpuprofile", filepath.Join(dir, "cpu.prof"),
		"-memprofile", filepath.Join(dir, "mem.prof"),
	).CombinedOutput()
	if err != nil {
		t.Fatalf("go run: %v\n%s", err, out)
	}

	data, err := os.ReadFile(filepath.Join(dir, "metrics.json"))
	if err != nil {
		t.Fatal(err)
	}
	var got metrics.Snapshot
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("unmarshal metrics.json: %v", err)
	}

	// Reproduce the run in-process with our own collector.
	col := metrics.NewCollector()
	cfg := experiments.DefaultFigure4()
	cfg.Instances = 1
	cfg.Mus = []int{1, 2}
	cfg.Seed = 3
	cfg.Workers = 1
	cfg.Ds = []int{2}
	cfg.Observer = col
	if _, err := experiments.RunFigure4(cfg); err != nil {
		t.Fatal(err)
	}
	want := col.Snapshot()

	// Counters, occupancy gauges and simulated-time accrual are exact;
	// only the wall-clock placement histogram may differ between runs.
	for _, name := range []string{
		metrics.MetricItemsPlaced, metrics.MetricBinsOpened, metrics.MetricBinsClosed,
		metrics.MetricFitChecks, metrics.MetricOpenBins, metrics.MetricOpenBinsPeak,
		metrics.MetricUsageTime,
	} {
		g, ok := got.Find(name)
		if !ok {
			t.Fatalf("metric %s missing from metrics.json", name)
		}
		w, _ := want.Find(name)
		if g.Value != w.Value {
			t.Errorf("%s = %v from command, want %v", name, g.Value, w.Value)
		}
	}
	gh, _ := got.Find(metrics.MetricFitChecksPerSelect)
	wh, _ := want.Find(metrics.MetricFitChecksPerSelect)
	if gh.Count != wh.Count || gh.Sum != wh.Sum {
		t.Errorf("fit-check histogram count/sum = %d/%v, want %d/%v", gh.Count, gh.Sum, wh.Count, wh.Sum)
	}

	// The profiling flags must have produced non-empty pprof files, and the
	// Prometheus rendering must exist alongside the JSON.
	for _, f := range []string{"cpu.prof", "mem.prof", "metrics.prom"} {
		fi, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Errorf("%s not written: %v", f, err)
		} else if fi.Size() == 0 {
			t.Errorf("%s is empty", f)
		}
	}
}
