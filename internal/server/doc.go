// Package server is the placement-as-a-service layer: a multi-tenant HTTP
// front end over the steppable engine (internal/core) and its crash-safe
// persistence (internal/persist). Each tenant is an independent dynamic DVBP
// run — its own policy, dimension, seed, op log, write-ahead log, and
// checkpoints under one directory — driven by a single worker goroutine that
// batches requests from a bounded queue and group-commits them.
//
// The durability contract is two fsync barriers per batch: client operations
// are appended to the tenant's op log and synced before the engine steps
// (so the WAL never references an item the op log could lose), and the WAL is
// synced before any client is acknowledged (so an acknowledged placement
// survives SIGKILL). Recovery rebuilds each tenant's item list from its op
// log, replays the WAL against it with bit-for-bit verification, and re-runs
// the clock to the last logged advance; see DESIGN.md §12.
//
// Backpressure is explicit: a full tenant queue answers 429, an expired
// request deadline or a draining server answers 503, and /healthz–/readyz
// split process liveness from serving readiness so a restart harness can wait
// for recovery to finish before resuming load.
package server
