// Package experiments defines the runnable experiments that regenerate the
// paper's evaluation: Figure 4 (average-case study of Any Fit algorithms),
// the Table 1 bound checks (adversarial lower bounds and upper-bound
// validation), and this reproduction's own ablations (Best Fit load
// measures, clairvoyant extensions, billing granularity).
//
// Every experiment is deterministic in its configuration and seed, and runs
// trials in parallel with per-trial derived seeds (see internal/parallel).
package experiments
