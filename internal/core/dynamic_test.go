package core

import (
	"strings"
	"testing"

	"dvbp/internal/item"
	"dvbp/internal/vector"
	"dvbp/internal/workload"
)

// feedDynamic drives a dynamic engine through the given items in order:
// append, then step until each arrival event commits, recording the bin it
// landed in. Returns the engine still un-finished.
func feedDynamic(t *testing.T, e *Engine, items []item.Item) map[int]int {
	t.Helper()
	placed := make(map[int]int, len(items))
	for _, it := range items {
		id, err := e.AppendArrival(it.Arrival, it.Departure, it.Size)
		if err != nil {
			t.Fatalf("AppendArrival: %v", err)
		}
		for {
			rec, ok, err := e.Step()
			if err != nil {
				t.Fatalf("Step: %v", err)
			}
			if !ok {
				t.Fatalf("engine went idle before arrival %d committed", id)
			}
			if rec.Class == EventArrival && rec.ItemID == id {
				placed[id] = rec.BinID
				break
			}
		}
	}
	return placed
}

// TestDynamicIncrementalMatchesBatch is the dynamic-mode determinism
// contract: feeding a stream item by item (stepping only due events after
// each) and then draining must produce a Result identical to a one-shot
// static run over the same final list, for every standard policy.
func TestDynamicIncrementalMatchesBatch(t *testing.T) {
	src, err := workload.Uniform(workload.UniformConfig{D: 2, N: 500, Mu: 20, T: 300, B: 50}, 11)
	if err != nil {
		t.Fatal(err)
	}
	stream := src.SortedByArrival()

	// The batch reference list admits the items in stream order, so IDs and
	// SeqNos match what AppendArrival assigns.
	batch := item.NewList(src.Dim)
	for _, it := range stream {
		batch.Add(it.Arrival, it.Departure, it.Size)
	}

	for _, name := range PolicyNames() {
		p1, _ := NewPolicy(name, 7)
		p2, _ := NewPolicy(name, 7)
		e, err := NewEngine(item.NewList(src.Dim), p1, WithDynamicArrivals())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		feedDynamic(t, e, stream)
		for {
			_, ok, err := e.Step()
			if err != nil {
				t.Fatalf("%s: drain: %v", name, err)
			}
			if !ok {
				break
			}
		}
		got, err := e.Finish()
		if err != nil {
			t.Fatalf("%s: Finish: %v", name, err)
		}
		want := mustSimulate(t, batch, p2)
		resultsEqual(t, "dynamic "+name, got, want)
		if got.Span != want.Span || got.Mu != want.Mu || got.Items != want.Items {
			t.Errorf("%s: shape summary (span=%g mu=%g items=%d) vs (span=%g mu=%g items=%d)",
				name, got.Span, got.Mu, got.Items, want.Span, want.Mu, want.Items)
		}
	}
}

// TestDynamicSnapshotRestoreMidStream: checkpoint a dynamic run mid-stream,
// grow the list further, and restore the snapshot against the longer list —
// the restored engine must regenerate the rest of the run identically.
func TestDynamicSnapshotRestoreMidStream(t *testing.T) {
	src, err := workload.Uniform(workload.UniformConfig{D: 2, N: 200, Mu: 10, T: 100, B: 20}, 3)
	if err != nil {
		t.Fatal(err)
	}
	stream := src.SortedByArrival()

	p1, _ := NewPolicy("BestFit", 1)
	live, err := NewEngine(item.NewList(src.Dim), p1, WithDynamicArrivals())
	if err != nil {
		t.Fatal(err)
	}
	feedDynamic(t, live, stream[:120])
	snap, err := live.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	seq := live.EventSeq()

	// Continue the live run to completion.
	feedDynamic(t, live, stream[120:])
	for {
		_, ok, err := live.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	want, err := live.Finish()
	if err != nil {
		t.Fatal(err)
	}

	// Restore against the full final list (as recovery does after the op log
	// is re-read) and replay the same suffix.
	full := item.NewList(src.Dim)
	for _, it := range stream {
		full.Add(it.Arrival, it.Departure, it.Size)
	}
	p2, _ := NewPolicy("BestFit", 1)
	re, err := RestoreEngine(full, p2, snap, WithDynamicArrivals())
	if err != nil {
		t.Fatal(err)
	}
	if re.EventSeq() != seq {
		t.Fatalf("restored at event %d, want %d", re.EventSeq(), seq)
	}
	for {
		_, ok, err := re.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	got, err := re.Finish()
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, "restored dynamic", got, want)
}

// TestDynamicGuards pins the admission discipline's error cases.
func TestDynamicGuards(t *testing.T) {
	p, _ := NewPolicy("FirstFit", 1)
	if _, err := NewEngine(item.NewList(2), p); err == nil {
		t.Fatal("static engine accepted an empty list")
	}
	e, err := NewEngine(item.NewList(2), p, WithDynamicArrivals())
	if err != nil {
		t.Fatalf("dynamic engine rejected an empty list: %v", err)
	}
	defer e.Close()

	if _, ok := e.PeekTime(); ok {
		t.Error("fresh dynamic engine claims a pending event")
	}
	if _, err := e.AppendArrival(5, 10, vector.Of(0.5, 0.5)); err != nil {
		t.Fatal(err)
	}
	if tm, ok := e.PeekTime(); !ok || tm != 5 {
		t.Errorf("PeekTime = %v,%v, want 5,true", tm, ok)
	}
	// Arrivals must be nondecreasing.
	if _, err := e.AppendArrival(4, 6, vector.Of(0.1, 0.1)); err == nil || !strings.Contains(err.Error(), "before the previously admitted") {
		t.Errorf("out-of-order arrival accepted (err=%v)", err)
	}
	// Dimension and range checks still apply.
	if _, err := e.AppendArrival(6, 7, vector.Of(0.5)); err == nil {
		t.Error("wrong-dimension item accepted")
	}
	if _, err := e.AppendArrival(6, 7, vector.Of(1.5, 0.1)); err == nil {
		t.Error("oversized item accepted")
	}
	// Commit past time 5, then try to append behind the clock.
	if _, ok, err := e.Step(); err != nil || !ok {
		t.Fatalf("Step = %v, %v", ok, err)
	}
	if _, err := e.AppendArrival(5, 9, vector.Of(0.1, 0.1)); err != nil {
		t.Errorf("same-instant arrival after commit rejected: %v", err)
	}
	st := e.Stats()
	if st.Clock != 5 || st.Items != 2 || st.OpenBins != 1 || st.Placements != 1 || st.ArrivalsPending != 1 {
		t.Errorf("stats = %+v", st)
	}
	if got := st.CostAt(8); got != 3 {
		t.Errorf("CostAt(8) = %g, want 3", got)
	}
	// Drain through the departures (t=9 and t=10): the clock is now ahead of
	// the last admitted arrival, and appends behind it must be refused.
	for {
		_, ok, err := e.Step()
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break
		}
	}
	if _, err := e.AppendArrival(7, 12, vector.Of(0.1, 0.1)); err == nil || !strings.Contains(err.Error(), "engine's past") {
		t.Errorf("arrival behind the committed clock accepted (err=%v)", err)
	}

	// A static engine refuses AppendArrival outright.
	l := item.NewList(1)
	l.Add(0, 1, vector.Of(0.5))
	p2, _ := NewPolicy("FirstFit", 1)
	se, err := NewEngine(l, p2)
	if err != nil {
		t.Fatal(err)
	}
	defer se.Close()
	if _, err := se.AppendArrival(2, 3, vector.Of(0.5)); err == nil {
		t.Error("static engine accepted AppendArrival")
	}
}
