package lowerbound

import (
	"math"
	"sort"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// Bounds carries the three Lemma 1 lower bounds for one instance.
type Bounds struct {
	// Integral is bound (i): ∫ max(1_{active}, ⌈‖s(R,t)‖∞⌉) dt.
	Integral float64
	// Utilization is bound (ii).
	Utilization float64
	// Span is bound (iii).
	Span float64
}

// Best returns the largest (tightest) of the three bounds. By Lemma 1 the
// integral bound dominates, but Best guards against degenerate inputs.
func (b Bounds) Best() float64 {
	return math.Max(b.Integral, math.Max(b.Utilization, b.Span))
}

// Compute returns the three Lemma 1 bounds for the instance.
func Compute(l *item.List) Bounds {
	return Bounds{
		Integral:    IntegralBound(l),
		Utilization: UtilizationBound(l),
		Span:        l.Span(),
	}
}

// IntegralBound computes Lemma 1(i):
//
//	∫ ⌈‖s(R,t)‖∞⌉ dt,
//
// where the integrand is additionally at least 1 whenever some item is active
// (OPT keeps at least one bin open then — this is how (i) subsumes (iii)).
//
// The sweep visits arrival/departure points in time order; within a segment
// between consecutive points the active set, and hence the load, is constant.
func IntegralBound(l *item.List) float64 {
	type ev struct {
		t     float64
		delta vector.Vector // +size on arrival, applied before segment
		sign  float64
	}
	events := make([]ev, 0, 2*l.Len())
	for _, it := range l.Items {
		events = append(events,
			ev{t: it.Arrival, delta: it.Size, sign: +1},
			ev{t: it.Departure, delta: it.Size, sign: -1},
		)
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		// Departures first: intervals are half-open, so at time t a departing
		// item no longer contributes.
		return events[i].sign < events[j].sign
	})

	load := vector.New(l.Dim)
	active := 0
	total := 0.0
	for i := 0; i < len(events); {
		t := events[i].t
		for i < len(events) && events[i].t == t {
			if events[i].sign > 0 {
				load.AddInPlace(events[i].delta)
				active++
			} else {
				load.SubInPlace(events[i].delta)
				active--
			}
			i++
		}
		if i == len(events) {
			break
		}
		segLen := events[i].t - t
		if segLen <= 0 || active == 0 {
			continue
		}
		need := math.Ceil(load.MaxNorm() - ceilSlack)
		if need < 1 {
			need = 1
		}
		total += need * segLen
	}
	return total
}

// ceilSlack absorbs float rounding before the ceiling: a load of 2.0000000001
// arising from summing sizes like 0.2 must count as 2 bins, not 3.
const ceilSlack = 1e-9

// UtilizationBound computes Lemma 1(ii): (1/d)·Σ_r ‖s(r)‖∞·ℓ(I(r)).
func UtilizationBound(l *item.List) float64 {
	if l.Dim == 0 {
		return 0
	}
	return l.TimeSpaceUtilization() / float64(l.Dim)
}

// BinDemandAt returns ⌈‖s(R,t)‖∞⌉ ∨ 1_{active}: the instantaneous minimum
// number of bins any algorithm needs at time t. Exposed for visualisation and
// tests.
func BinDemandAt(l *item.List, t float64) int {
	load := l.LoadAt(t)
	anyActive := false
	for _, it := range l.Items {
		if it.ActiveAt(t) {
			anyActive = true
			break
		}
	}
	if !anyActive {
		return 0
	}
	need := int(math.Ceil(load.MaxNorm() - ceilSlack))
	if need < 1 {
		need = 1
	}
	return need
}
