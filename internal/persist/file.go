package persist

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
)

// defaultSyncEvery is the fsync batch size: the writer fsyncs after this many
// appended records (and always on Sync/Close). Batching amortises the fsync
// cost over a window of events; a crash can lose at most the current batch,
// which recovery treats as an ordinary torn tail.
const defaultSyncEvery = 64

// Writer appends checksummed records to a persist-format file. It buffers
// in-process and fsyncs in batches; Sync forces both down to the device.
// A Writer is single-goroutine, like the engine it records.
type Writer struct {
	f         *os.File
	bw        *bufio.Writer
	scratch   []byte
	syncEvery int
	pending   int
	size      int64
	err       error
}

// Create creates (truncating) a persist file of the given kind and writes its
// header. syncEvery <= 0 selects the default batch size.
func Create(path string, kind FileKind, syncEvery int) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	w := newWriter(f, syncEvery)
	if _, err := w.bw.Write(appendHeader(w.scratch[:0], kind)); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	w.size = headerSize
	if err := w.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// openAppend reopens an existing persist file for appending after truncating
// it to validSize — the recovery path that discards a torn tail and continues
// the log in place.
func openAppend(path string, validSize int64, syncEvery int) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	if err := f.Truncate(validSize); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	if _, err := f.Seek(validSize, 0); err != nil {
		f.Close()
		return nil, fmt.Errorf("persist: %w", err)
	}
	w := newWriter(f, syncEvery)
	w.size = validSize
	if err := w.Sync(); err != nil { // persist the truncation itself
		f.Close()
		return nil, err
	}
	return w, nil
}

func newWriter(f *os.File, syncEvery int) *Writer {
	if syncEvery <= 0 {
		syncEvery = defaultSyncEvery
	}
	return &Writer{f: f, bw: bufio.NewWriter(f), syncEvery: syncEvery}
}

// Append frames and writes one record. The payload is copied before Append
// returns; the caller may reuse its buffer.
func (w *Writer) Append(payload []byte) error {
	if w.err != nil {
		return w.err
	}
	w.scratch = appendRecord(w.scratch[:0], payload)
	if _, err := w.bw.Write(w.scratch); err != nil {
		w.err = fmt.Errorf("persist: %w", err)
		return w.err
	}
	w.size += int64(len(w.scratch))
	w.pending++
	if w.pending >= w.syncEvery {
		return w.Sync()
	}
	return nil
}

// Sync flushes the buffer and fsyncs the file.
func (w *Writer) Sync() error {
	if w.err != nil {
		return w.err
	}
	if err := w.bw.Flush(); err != nil {
		w.err = fmt.Errorf("persist: %w", err)
		return w.err
	}
	if err := w.f.Sync(); err != nil {
		w.err = fmt.Errorf("persist: %w", err)
		return w.err
	}
	w.pending = 0
	return nil
}

// Size returns the file size including any still-buffered bytes.
func (w *Writer) Size() int64 { return w.size }

// Close syncs and closes the file. Closing an already-failed writer closes
// the descriptor and reports the first error.
func (w *Writer) Close() error {
	syncErr := w.Sync()
	closeErr := w.f.Close()
	if syncErr != nil {
		return syncErr
	}
	if closeErr != nil {
		return fmt.Errorf("persist: %w", closeErr)
	}
	return nil
}

// FileData is the decoded content of one persist file.
type FileData struct {
	Kind FileKind
	// Records holds every intact payload, in file order.
	Records [][]byte
	// Offsets[i] is the byte offset of Records[i]'s frame.
	Offsets []int64
	// Size is the file's full size; ValidSize the prefix covered by the
	// header and intact records (== Size when the file is clean).
	Size      int64
	ValidSize int64
	// Torn describes the first defect in the record region, nil when clean.
	// A torn file is still usable up to ValidSize.
	Torn *CorruptionError
}

// ReadFile reads and validates a persist file. A damaged header (or an
// unreadable file) is fatal and returned as the error; damaged records only
// truncate: the intact prefix comes back in FileData with Torn describing
// the defect. The returned payloads are private copies.
func ReadFile(path string) (*FileData, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	kind, herr := parseHeader(data)
	if herr != nil {
		herr.Path = path
		return nil, herr
	}
	recs, offs, torn := scanRecords(data[headerSize:], headerSize)
	if torn != nil {
		torn.Path = path
	}
	fd := &FileData{Kind: kind, Records: recs, Offsets: offs, Size: int64(len(data)), ValidSize: int64(len(data)), Torn: torn}
	if torn != nil {
		fd.ValidSize = torn.Offset
	}
	return fd, nil
}

// syncDir fsyncs a directory so renames and creations within it survive a
// crash (the standard create-temp / rename / fsync-dir dance).
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	defer d.Close()
	if err := d.Sync(); err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	return nil
}

// WriteFileAtomic writes content to path via a temp file + rename + directory
// sync, so a crash never leaves a half-written file under the final name. The
// server layer uses it for its tenant manifest; snapshots go through it too.
func WriteFileAtomic(path string, content []byte) error {
	return writeFileAtomic(path, content)
}

// writeFileAtomic writes content to path via a temp file + rename + directory
// sync, so a crash never leaves a half-written file under the final name.
func writeFileAtomic(path string, content []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return fmt.Errorf("persist: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() { tmp.Close(); os.Remove(tmpName) }
	if _, err := tmp.Write(content); err != nil {
		cleanup()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("persist: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("persist: %w", err)
	}
	return syncDir(dir)
}
