// VM placement: the cloud-provider view from Section 1 of the paper. VM
// requests with (vCPU, RAM, disk-IO, network) demands are placed onto
// physical servers; minimising total server usage time cuts the provider's
// power bill ("even a 1% improvement in packing efficiency can save ~$100M/yr
// at Azure scale").
//
// The example uses the library's diurnal session generator (day/night load
// cycle), converts the normalised trace into native-unit VM requests, and
// shows (a) the usage-time comparison across policies and (b) how far the
// best online policy is from the OPT bracket.
//
//	go run ./examples/vmplacement
package main

import (
	"fmt"
	"log"

	"dvbp"
	"dvbp/internal/workload"
)

func main() {
	const seed = 7

	// Two simulated days of VM arrivals with a 3x day/night swing.
	trace, err := workload.Diurnal(workload.DiurnalConfig{
		Session: workload.SessionConfig{
			D:            4, // vCPU, RAM, disk-IO, network
			Horizon:      48,
			Rate:         8,
			MeanDuration: 4,
			Alpha:        2.2,
			MinDuration:  0.25,
			MaxDuration:  24,
		},
		Period:     24,
		PeakFactor: 3,
	}, seed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("VM trace: %d requests over %.0f hours, mu = %.1f\n\n",
		trace.Len(), trace.Hull().Length(), trace.Mu())

	// Physical servers: 128 vCPU, 512 GiB RAM, 100k IOPS, 25 Gbit/s. The
	// generator emits normalised demands, so capacity is 1^d here; a real
	// deployment would use dvbp.RunCloud with native units (see the
	// cloudgaming example).
	lb := dvbp.LowerBounds(trace)
	up, err := dvbp.OfflineBestEstimate(trace)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OPT bracket: [%.1f, %.1f] server-hours\n\n", lb.Best(), up.Cost)

	fmt.Printf("%-12s %12s %10s %8s %8s\n", "policy", "usage(h)", "vs LB", "servers", "peak")
	type row struct {
		name string
		cost float64
	}
	var best, worst row
	for i, p := range dvbp.StandardPolicies(seed) {
		res, err := dvbp.Simulate(trace, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %12.1f %10.4f %8d %8d\n",
			p.Name(), res.Cost, res.Cost/lb.Best(), res.BinsOpened, res.MaxConcurrentBins)
		r := row{p.Name(), res.Cost}
		if i == 0 || r.cost < best.cost {
			best = r
		}
		if i == 0 || r.cost > worst.cost {
			worst = r
		}
	}

	// The provider-scale argument: % saved by choosing the best policy.
	saved := 100 * (worst.cost - best.cost) / worst.cost
	fmt.Printf("\n%s uses %.1f%% less server time than %s on this trace\n", best.name, saved, worst.name)

	// Clairvoyant upper bound: if VM lifetimes were known on arrival.
	cl, err := dvbp.Simulate(trace, dvbp.NewAlignedBestFit(), dvbp.WithClairvoyance())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("with known lifetimes (AlignedBestFit): %.1f server-hours (%.4f vs LB)\n",
		cl.Cost, cl.Cost/lb.Best())
}
