package workload

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// Trace serialisation: items round-trip through CSV (one row per item:
// id,arrival,departure,s_1,...,s_d) and JSON. Traces let experiments be
// archived and replayed bit-for-bit, and let external traces be imported.

// WriteCSV writes the list as CSV with a header row.
func WriteCSV(w io.Writer, l *item.List) error {
	cw := csv.NewWriter(w)
	header := []string{"id", "arrival", "departure"}
	for j := 0; j < l.Dim; j++ {
		header = append(header, fmt.Sprintf("s%d", j))
	}
	if err := cw.Write(header); err != nil {
		return fmt.Errorf("workload: write header: %w", err)
	}
	row := make([]string, 0, 3+l.Dim)
	for _, it := range l.Items {
		row = row[:0]
		row = append(row,
			strconv.Itoa(it.ID),
			strconv.FormatFloat(it.Arrival, 'g', -1, 64),
			strconv.FormatFloat(it.Departure, 'g', -1, 64),
		)
		for _, s := range it.Size {
			row = append(row, strconv.FormatFloat(s, 'g', -1, 64))
		}
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("workload: write item %d: %w", it.ID, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV parses a CSV trace written by WriteCSV (or hand-authored with the
// same header). Items keep file order for arrival tie-breaking.
func ReadCSV(r io.Reader) (*item.List, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("workload: read csv: %w", err)
	}
	if len(rows) < 2 {
		return nil, fmt.Errorf("workload: csv needs a header and at least one item")
	}
	header := rows[0]
	if len(header) < 4 || header[0] != "id" || header[1] != "arrival" || header[2] != "departure" {
		return nil, fmt.Errorf("workload: unexpected csv header %v", header)
	}
	d := len(header) - 3
	l := item.NewList(d)
	for i, row := range rows[1:] {
		if len(row) != 3+d {
			return nil, fmt.Errorf("workload: row %d has %d fields, want %d", i+1, len(row), 3+d)
		}
		id, err := strconv.Atoi(row[0])
		if err != nil {
			return nil, fmt.Errorf("workload: row %d id: %w", i+1, err)
		}
		arr, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d arrival: %w", i+1, err)
		}
		dep, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			return nil, fmt.Errorf("workload: row %d departure: %w", i+1, err)
		}
		size := vector.New(d)
		for j := 0; j < d; j++ {
			size[j], err = strconv.ParseFloat(row[3+j], 64)
			if err != nil {
				return nil, fmt.Errorf("workload: row %d s%d: %w", i+1, j, err)
			}
		}
		l.Items = append(l.Items, item.Item{ID: id, Arrival: arr, Departure: dep, Size: size})
	}
	if err := l.Normalize(); err != nil {
		return nil, err
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}

// jsonTrace is the JSON wire format.
type jsonTrace struct {
	Dim   int        `json:"dim"`
	Items []jsonItem `json:"items"`
}

type jsonItem struct {
	ID        int       `json:"id"`
	Arrival   float64   `json:"arrival"`
	Departure float64   `json:"departure"`
	Size      []float64 `json:"size"`
}

// WriteJSON writes the list as an indented JSON document.
func WriteJSON(w io.Writer, l *item.List) error {
	t := jsonTrace{Dim: l.Dim, Items: make([]jsonItem, 0, l.Len())}
	for _, it := range l.Items {
		t.Items = append(t.Items, jsonItem{ID: it.ID, Arrival: it.Arrival, Departure: it.Departure, Size: it.Size})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadJSON parses a JSON trace written by WriteJSON.
func ReadJSON(r io.Reader) (*item.List, error) {
	var t jsonTrace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("workload: read json: %w", err)
	}
	l := item.NewList(t.Dim)
	for _, ji := range t.Items {
		l.Items = append(l.Items, item.Item{ID: ji.ID, Arrival: ji.Arrival, Departure: ji.Departure, Size: vector.Of(ji.Size...)})
	}
	if err := l.Normalize(); err != nil {
		return nil, err
	}
	if err := l.Validate(); err != nil {
		return nil, err
	}
	return l, nil
}
