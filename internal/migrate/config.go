package migrate

import (
	"flag"
	"fmt"
	"sort"
	"strings"

	"dvbp/internal/core"
)

// planners is the registry of standard consolidation planners.
var planners = map[string]func() core.MigrationPlanner{
	"drain-emptiest": func() core.MigrationPlanner { return DrainEmptiest{} },
	"farb-score":     func() core.MigrationPlanner { return FARBScore{} },
	"stranded":       func() core.MigrationPlanner { return Stranded{} },
}

// PlannerNames lists the registered planner names, sorted.
func PlannerNames() []string {
	out := make([]string, 0, len(planners))
	for name := range planners {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// NewPlanner resolves a registered planner by name.
func NewPlanner(name string) (core.MigrationPlanner, error) {
	mk, ok := planners[name]
	if !ok {
		return nil, fmt.Errorf("migrate: unknown planner %q (have %v)", name, PlannerNames())
	}
	return mk(), nil
}

// Config is the CLI/experiment-facing migration configuration: a planner name
// plus the pass cadence and per-pass budget. The zero value means migration
// disabled (the paper's irrevocable model).
type Config struct {
	// Planner is a registered planner name ("" disables migration).
	Planner string
	// Period is the consolidation cadence in trace time units.
	Period float64
	// MaxMoves caps moves per pass.
	MaxMoves int
	// MaxCost caps the summed size·remaining-duration cost per pass
	// (0 = unlimited cost, count-capped only).
	MaxCost float64
}

// Register installs the CLI flags that populate the configuration, in the
// faults.Spec.Register style. prefix prefixes every flag name.
func (c *Config) Register(fs *flag.FlagSet, prefix string) {
	fs.StringVar(&c.Planner, prefix+"migrate", "",
		"consolidation planner: "+strings.Join(PlannerNames(), " | ")+" (empty = irrevocable placements, the paper's model)")
	fs.Float64Var(&c.Period, prefix+"migrate-period", 10, "time units between consolidation passes")
	fs.IntVar(&c.MaxMoves, prefix+"migrate-moves", 8, "max moves per consolidation pass")
	fs.Float64Var(&c.MaxCost, prefix+"migrate-cost", 0, "max size·remaining-duration migration cost per pass (0 = unlimited)")
}

// Enabled reports whether the configuration turns migration on.
func (c Config) Enabled() bool { return c.Planner != "" && c.Period > 0 && c.MaxMoves > 0 }

// Option resolves the configuration into a core engine option. A disabled
// configuration (empty planner) yields a no-op option, so callers can apply
// it unconditionally; a named planner with an unusable period or budget is an
// error rather than a silent no-op.
func (c Config) Option() (core.Option, error) {
	if c.Planner == "" {
		// WithMigration with a nil planner configures nothing by contract.
		return core.WithMigration(nil, 0, core.MigrationBudget{}), nil
	}
	if c.Period <= 0 {
		return nil, fmt.Errorf("migrate: period %g must be positive", c.Period)
	}
	if c.MaxMoves <= 0 {
		return nil, fmt.Errorf("migrate: max moves %d must be positive", c.MaxMoves)
	}
	p, err := NewPlanner(c.Planner)
	if err != nil {
		return nil, err
	}
	return core.WithMigration(p, c.Period, core.MigrationBudget{MaxMoves: c.MaxMoves, MaxCost: c.MaxCost}), nil
}

// String is the canonical display form, used as persist.RunMeta.Migration.
// Disabled configurations render as "".
func (c Config) String() string {
	if !c.Enabled() {
		return ""
	}
	if c.MaxCost > 0 {
		return fmt.Sprintf("%s period=%g moves=%d cost=%g", c.Planner, c.Period, c.MaxMoves, c.MaxCost)
	}
	return fmt.Sprintf("%s period=%g moves=%d", c.Planner, c.Period, c.MaxMoves)
}
