package faults

import (
	"fmt"
	"math"
)

// DefaultMinTTF is the floor applied to MTBF time-to-failure draws. A crash
// at (or arbitrarily near) the opening instant would evict the very item
// whose placement opened the bin in a zero-width usage interval; the floor
// keeps generated schedules physically sensible while remaining far below
// any realistic duration scale.
const DefaultMinTTF = 1e-6

// MTBF schedules a crash for every opened bin at an exponentially
// distributed time-to-failure with the given mean. The zero value is not
// useful; Mean must be positive. MTBF is stateless: the draw for a bin is a
// pure function of (Seed, binID), so replays and reference simulations see
// the same schedule regardless of call order.
type MTBF struct {
	// Mean is the mean time between failures (the exponential's mean), in
	// simulated time units. Must be > 0.
	Mean float64
	// Seed selects the schedule. Two MTBF values with the same Mean and Seed
	// produce identical crash times.
	Seed int64
	// MinTTF floors each draw; 0 means DefaultMinTTF.
	MinTTF float64
}

// BinOpened implements core.FailureInjector.
func (m MTBF) BinOpened(binID int, openedAt float64) (float64, bool) {
	if !(m.Mean > 0) {
		return 0, false
	}
	u := rng01(m.Seed, binID)
	ttf := -m.Mean * math.Log(1-u)
	min := m.MinTTF
	if min <= 0 {
		min = DefaultMinTTF
	}
	if ttf < min {
		ttf = min
	}
	return openedAt + ttf, true
}

// String renders the schedule for logs and reports.
func (m MTBF) String() string {
	return fmt.Sprintf("mtbf(mean=%g,seed=%d)", m.Mean, m.Seed)
}

// rng01 maps (seed, n) to a uniform float64 in [0, 1) via a SplitMix64 step,
// mirroring parallel.SeedFor. Stateless by construction.
func rng01(seed int64, n int) float64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*uint64(n+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// TraceEvent is one scripted crash.
type TraceEvent struct {
	// BinID is the bin (server) the event targets. Bin IDs are assigned by
	// the engine in opening order starting from 0.
	BinID int
	// At is the crash time: absolute simulation time, or an offset after the
	// bin's opening when AfterOpen is set.
	At float64
	// AfterOpen interprets At as "time units after the bin opened".
	AfterOpen bool
}

// Trace is an explicit fault schedule: at most one crash per bin ID. Crashes
// scheduled for bins that never open, or after the target bin has already
// closed naturally, are silently inert (the engine drops them).
type Trace struct {
	byBin map[int]TraceEvent
}

// NewTrace builds a trace schedule, rejecting duplicate bin IDs and
// non-finite or negative times.
func NewTrace(events []TraceEvent) (*Trace, error) {
	byBin := make(map[int]TraceEvent, len(events))
	for _, e := range events {
		if e.BinID < 0 {
			return nil, fmt.Errorf("faults: trace event with negative bin ID %d", e.BinID)
		}
		if math.IsNaN(e.At) || math.IsInf(e.At, 0) || e.At < 0 {
			return nil, fmt.Errorf("faults: trace event for bin %d has invalid time %v", e.BinID, e.At)
		}
		if _, dup := byBin[e.BinID]; dup {
			return nil, fmt.Errorf("faults: duplicate trace event for bin %d", e.BinID)
		}
		byBin[e.BinID] = e
	}
	return &Trace{byBin: byBin}, nil
}

// BinOpened implements core.FailureInjector.
func (tr *Trace) BinOpened(binID int, openedAt float64) (float64, bool) {
	e, ok := tr.byBin[binID]
	if !ok {
		return 0, false
	}
	if e.AfterOpen {
		return openedAt + e.At, true
	}
	return e.At, true
}

// Len returns the number of scheduled crashes.
func (tr *Trace) Len() int { return len(tr.byBin) }

// String renders the schedule for logs and reports.
func (tr *Trace) String() string { return fmt.Sprintf("trace(%d events)", len(tr.byBin)) }
