// Package offline implements offline packing heuristics for MinUsageTime
// DVBP. Exact OPT is NP-hard, so experiments bracket it:
//
//	lowerbound.Compute(l).Best()  ≤  OPT(l)  ≤  cost of any feasible packing,
//
// and this package supplies good feasible packings computed with full
// knowledge of arrivals and departures. Together with the online costs this
// lets EXPERIMENTS.md report how loose the Figure 4 normalisation can be.
//
// Heuristics:
//
//   - FirstFitDecreasing: items sorted by time–space utilisation
//     ‖s(r)‖∞·ℓ(I(r)) descending, placed into the first temporally feasible
//     bin (classical FFD adapted to interval loads).
//   - DurationClasses: items bucketed by ⌈log₂(duration)⌉ and FFD-packed per
//     class — the alignment idea behind clairvoyant algorithms: items that
//     die together live together.
//   - GreedyExtension: items in arrival order, each placed into the feasible
//     bin whose usage-time extension is smallest (a clairvoyant greedy).
package offline
