// Cloud gaming: dispatch game sessions to rented GPU servers and compare the
// rental bill across dispatch policies — the application from Section 1 of
// the paper (GaiKai / OnLive / StreamMyGame).
//
// Sessions arrive as a Poisson process with heavy-tailed play times; each
// session demands GPU, CPU and bandwidth. Servers are billed per started
// hour ("pay-as-you-go"). The dispatcher cannot migrate running sessions and
// does not know how long a player will stay — exactly the non-clairvoyant
// MinUsageTime DVBP model.
//
//	go run ./examples/cloudgaming
package main

import (
	"fmt"
	"log"
	"math/rand"

	"dvbp"
)

func main() {
	const (
		horizon = 24 * 7 // one week of hours
		seed    = 2026
	)

	// Generate a week of game sessions: three game profiles with different
	// resource appetites, mean play time ~1.5 h, heavy tail up to 12 h.
	r := rand.New(rand.NewSource(seed))
	var reqs []dvbp.CloudRequest
	games := []struct {
		name          string
		gpu, cpu, net float64
		weight        int
	}{
		{"kart-racer", 20, 8, 80, 5},   // light GPU, streaming heavy
		{"open-world", 45, 16, 120, 3}, // GPU heavy
		{"tactics", 10, 4, 40, 2},      // lightweight
	}
	id := 0
	for t := 0.0; t < horizon; {
		t += r.ExpFloat64() / 6 // ~6 sessions per hour
		if t >= horizon {
			break
		}
		g := games[pick(r, []int{5, 3, 2})]
		dur := 0.25 + r.ExpFloat64()*1.25
		if dur > 12 {
			dur = 12
		}
		reqs = append(reqs, dvbp.CloudRequest{
			ID:       id,
			Name:     g.name,
			Arrive:   t,
			Duration: dur,
			// ±20% jitter per session.
			Demand: dvbp.Vec(jit(r, g.gpu), jit(r, g.cpu), jit(r, g.net)),
		})
		id++
	}
	fmt.Printf("generated %d game sessions over %d hours\n\n", len(reqs), horizon)

	// Each rented server: 100 GPU units, 64 vCPU, 1000 Mbit/s; billed $2.50
	// per started hour.
	cfg := dvbp.CloudConfig{
		Capacity: dvbp.Vec(100, 64, 1000),
		Billing:  dvbp.CloudBilling{Quantum: 1, PricePerUnit: 2.50},
	}

	reports, err := dvbp.CompareCloud(cfg, reqs, dvbp.StandardPolicies(seed))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-12s %10s %10s %8s %8s\n", "policy", "usage(h)", "bill($)", "servers", "peak")
	best := reports[0]
	for _, rep := range reports {
		fmt.Printf("%-12s %10.1f %10.2f %8d %8d\n",
			rep.Policy, rep.UsageTime, rep.BilledCost, rep.ServersRented, rep.PeakServers)
		if rep.BilledCost < best.BilledCost {
			best = rep
		}
	}
	worst := reports[0]
	for _, rep := range reports {
		if rep.BilledCost > worst.BilledCost {
			worst = rep
		}
	}
	fmt.Printf("\ncheapest dispatcher: %s ($%.2f); dispatching with %s instead would cost +%.1f%%\n",
		best.Policy, best.BilledCost, worst.Policy,
		100*(worst.BilledCost-best.BilledCost)/best.BilledCost)
}

// pick returns an index with probability proportional to weights.
func pick(r *rand.Rand, weights []int) int {
	total := 0
	for _, w := range weights {
		total += w
	}
	x := r.Intn(total)
	for i, w := range weights {
		if x < w {
			return i
		}
		x -= w
	}
	return len(weights) - 1
}

func jit(r *rand.Rand, v float64) float64 {
	return v * (0.8 + 0.4*r.Float64())
}
