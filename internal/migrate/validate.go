package migrate

import (
	"fmt"
	"math"

	"dvbp/internal/core"
)

// ClusterState is the plain-data form of a cluster a migration plan is
// validated against: per-bin loads and per-item sizes plus each item's bin.
// It mirrors what core.MigrationView exposes, but holds no live engine state,
// so adversarial inputs (fuzzing, external plan files) can be checked safely.
type ClusterState struct {
	// Dim is the resource dimension; every load and size must have length Dim.
	Dim int
	// Load maps open bin IDs to their current load vectors.
	Load map[int][]float64
	// Size maps active item IDs to their size vectors.
	Size map[int][]float64
	// BinOf maps each active item to the open bin holding it.
	BinOf map[int]int
}

// PlanError reports why a migration plan was rejected. Move is the offending
// index into the plan (-1 for plan-level violations such as a blown budget or
// a malformed state).
type PlanError struct {
	Move   int
	Reason string
}

func (e *PlanError) Error() string {
	if e.Move < 0 {
		return "migrate: invalid plan: " + e.Reason
	}
	return fmt.Sprintf("migrate: invalid plan: move %d: %s", e.Move, e.Reason)
}

func planErrf(move int, format string, args ...interface{}) *PlanError {
	return &PlanError{Move: move, Reason: fmt.Sprintf(format, args...)}
}

// finite reports whether every component of v is a finite float in [0, 1].
func finite(v []float64) bool {
	for _, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) || x < 0 || x > 1 {
			return false
		}
	}
	return true
}

// checkState validates the cluster state itself; a malformed state is a
// plan-level error (Move = -1).
func checkState(st ClusterState) *PlanError {
	if st.Dim <= 0 {
		return planErrf(-1, "state: dimension %d is not positive", st.Dim)
	}
	for id, l := range st.Load {
		if len(l) != st.Dim {
			return planErrf(-1, "state: bin %d load has %d dims, want %d", id, len(l), st.Dim)
		}
		if !finite(l) {
			return planErrf(-1, "state: bin %d load is not a finite vector in [0,1]", id)
		}
	}
	for id, s := range st.Size {
		if len(s) != st.Dim {
			return planErrf(-1, "state: item %d size has %d dims, want %d", id, len(s), st.Dim)
		}
		if !finite(s) {
			return planErrf(-1, "state: item %d size is not a finite vector in [0,1]", id)
		}
		b, ok := st.BinOf[id]
		if !ok {
			return planErrf(-1, "state: item %d has a size but no bin", id)
		}
		if _, ok := st.Load[b]; !ok {
			return planErrf(-1, "state: item %d sits in unknown bin %d", id, b)
		}
	}
	for id := range st.BinOf {
		if _, ok := st.Size[id]; !ok {
			return planErrf(-1, "state: item %d has a bin but no size", id)
		}
	}
	return nil
}

// ValidatePlan checks a migration plan against a cluster state and budget:
// structural soundness (known bins and items, no self-moves, each move's From
// matching where the item actually is once earlier moves applied, no item
// moved twice), budget compliance (count, and cost when costOf is non-nil),
// and capacity safety (simulating the moves in order never pushes any bin
// above 1 in any dimension). It returns nil for a valid plan and a structured
// *PlanError otherwise — never a panic, whatever the input.
//
// costOf gives each move's migration cost (size·remaining-duration); pass nil
// to skip cost accounting (count-only budgets).
func ValidatePlan(st ClusterState, plan []core.MigrationMove, budget core.MigrationBudget, costOf func(itemID int) float64) error {
	if err := checkState(st); err != nil {
		return err
	}
	if len(plan) == 0 {
		return nil
	}
	if budget.MaxMoves <= 0 {
		return planErrf(-1, "non-empty plan with MaxMoves %d", budget.MaxMoves)
	}
	if len(plan) > budget.MaxMoves {
		return planErrf(-1, "%d moves exceed budget MaxMoves %d", len(plan), budget.MaxMoves)
	}

	// Simulate on copies; the caller's state must stay untouched.
	load := make(map[int][]float64, len(st.Load))
	for id, l := range st.Load {
		load[id] = append([]float64(nil), l...)
	}
	binOf := make(map[int]int, len(st.BinOf))
	for id, b := range st.BinOf {
		binOf[id] = b
	}

	moved := make(map[int]bool, len(plan))
	cost := 0.0
	for i, mv := range plan {
		size, ok := st.Size[mv.ItemID]
		if !ok {
			return planErrf(i, "unknown item %d", mv.ItemID)
		}
		if moved[mv.ItemID] {
			return planErrf(i, "item %d moved twice in one pass", mv.ItemID)
		}
		if mv.From == mv.To {
			return planErrf(i, "item %d: self-move within bin %d", mv.ItemID, mv.From)
		}
		if at := binOf[mv.ItemID]; at != mv.From {
			return planErrf(i, "item %d is in bin %d, not %d", mv.ItemID, at, mv.From)
		}
		to, ok := load[mv.To]
		if !ok {
			return planErrf(i, "unknown target bin %d", mv.To)
		}
		if costOf != nil {
			c := costOf(mv.ItemID)
			if math.IsNaN(c) || c < 0 {
				return planErrf(i, "item %d has invalid migration cost %v", mv.ItemID, c)
			}
			cost += c
			if budget.MaxCost > 0 && cost > budget.MaxCost {
				return planErrf(i, "cumulative cost %v exceeds budget MaxCost %v", cost, budget.MaxCost)
			}
		}
		from := load[mv.From]
		for j, s := range size {
			from[j] -= s
			to[j] += s
			if to[j] > 1 {
				return planErrf(i, "item %d overflows bin %d in dimension %d (%v > 1)", mv.ItemID, mv.To, j, to[j])
			}
		}
		binOf[mv.ItemID] = mv.To
		moved[mv.ItemID] = true
	}
	return nil
}
