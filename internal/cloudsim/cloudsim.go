package cloudsim

import (
	"fmt"
	"math"
	"sort"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// Request is a job/VM/session request in native units (e.g. vCPUs, GiB RAM,
// Gbit/s). Demand must not exceed the server capacity in any dimension.
type Request struct {
	// ID is the caller's identifier; it must be unique per simulation.
	ID int
	// Name is an optional label (instance type, game title, ...).
	Name string
	// Arrive is the arrival time in simulation time units.
	Arrive float64
	// Duration is the session length; the dispatcher treats it as unknown
	// until the session ends (non-clairvoyant).
	Duration float64
	// Demand is the resource demand vector in native units.
	Demand vector.Vector
}

// Billing converts a server's busy interval into billed time.
type Billing struct {
	// Quantum is the billing granularity: usage is rounded up to a whole
	// number of quanta per server ("pay per started hour"). Zero means exact
	// (per-second) metering — the paper's objective.
	Quantum float64
	// PricePerUnit is the cost of one time unit of one server.
	PricePerUnit float64
}

// Bill returns the billed monetary cost for one server busy for `usage` time.
func (b Billing) Bill(usage float64) float64 {
	t := usage
	if b.Quantum > 0 {
		t = math.Ceil(usage/b.Quantum-1e-9) * b.Quantum
	}
	return t * b.PricePerUnit
}

// Config describes the fleet and dispatch policy.
type Config struct {
	// Capacity is the per-server capacity vector in native units; all
	// servers are identical (the paper's unit-bin model after normalising).
	Capacity vector.Vector
	// Policy chooses the server for each request (any core.Policy).
	Policy core.Policy
	// Billing is the tariff.
	Billing Billing

	// MaxServers caps the fleet at this many simultaneously rented servers
	// (0 = unbounded, the paper's model). When a request fits no active
	// server and the cap is reached, the request is rejected — or queued,
	// when Queue is set.
	MaxServers int
	// Queue enables graceful degradation under MaxServers: over-capacity
	// requests wait in a FIFO admission queue instead of being rejected.
	Queue bool
	// QueueDeadline is how long a queued request may wait before timing
	// out (also bounded by the request's own duration window).
	QueueDeadline float64

	// Faults, when non-nil, injects server crashes (see internal/faults for
	// deterministic schedules). Sessions running on a crashed server are
	// evicted and re-dispatched per Retry.
	Faults core.FailureInjector
	// Retry schedules re-dispatch of evicted sessions; nil means immediate.
	Retry core.RetryPolicy
}

// ServerUsage reports one rented server's lifetime.
type ServerUsage struct {
	ServerID int
	OpenedAt float64
	ClosedAt float64
	Usage    float64
	Billed   float64
	Sessions int
	// Crashed reports that the server was taken down by fault injection
	// rather than released after its last session.
	Crashed bool
}

// Report is the outcome of a cloud simulation.
type Report struct {
	Policy string
	// ServersRented is the number of distinct servers ever used.
	ServersRented int
	// PeakServers is the maximum number of simultaneously active servers.
	PeakServers int
	// UsageTime is the MinUsageTime objective in time units.
	UsageTime float64
	// BilledCost is the monetary cost under the configured tariff.
	BilledCost float64
	// Servers lists per-server usage, ascending by ServerID.
	Servers []ServerUsage
	// PlacementOf maps request ID -> server ID (the last server the request
	// ran on, when crashes forced re-placements).
	PlacementOf map[int]int

	// Failure and admission accounting; all zero on a fault-free,
	// uncapped run.

	// Crashes is the number of servers lost to fault injection.
	Crashes int
	// Evictions counts session displacements caused by crashes.
	Evictions int
	// Retries counts successful re-placements of evicted sessions.
	Retries int
	// QueuedPlaced counts placements that came out of the admission queue,
	// and QueueDelay the total time those requests spent waiting.
	QueuedPlaced int
	QueueDelay   float64
	// LostUsageTime is the total session time lost to crashes.
	LostUsageTime float64
	// LostIDs, RejectedIDs and TimedOutIDs list the requests (by caller ID,
	// ascending) that terminally failed: evicted with no time to resume,
	// rejected at admission, or expired in the admission queue.
	LostIDs     []int
	RejectedIDs []int
	TimedOutIDs []int
}

// Failed reports the total number of requests that were not served to
// completion.
func (r *Report) Failed() int {
	return len(r.LostIDs) + len(r.RejectedIDs) + len(r.TimedOutIDs)
}

// Run dispatches the requests online and returns the usage/billing report.
// Requests may be given in any order; dispatch follows (Arrive, input order).
func Run(cfg Config, reqs []Request) (*Report, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cloudsim: nil policy")
	}
	if cfg.Capacity.Dim() == 0 {
		return nil, fmt.Errorf("cloudsim: empty capacity vector")
	}
	if cfg.Billing.PricePerUnit < 0 || cfg.Billing.Quantum < 0 {
		return nil, fmt.Errorf("cloudsim: negative billing parameters")
	}
	for _, c := range cfg.Capacity {
		if c <= 0 {
			return nil, fmt.Errorf("cloudsim: non-positive capacity component in %v", cfg.Capacity)
		}
	}
	if cfg.MaxServers < 0 {
		return nil, fmt.Errorf("cloudsim: negative MaxServers")
	}
	if cfg.Queue && (cfg.MaxServers == 0 || cfg.QueueDeadline < 0 || math.IsNaN(cfg.QueueDeadline)) {
		return nil, fmt.Errorf("cloudsim: Queue requires MaxServers > 0 and a non-negative QueueDeadline")
	}
	if len(reqs) == 0 {
		return nil, fmt.Errorf("cloudsim: no requests")
	}
	if err := ValidateRequests(cfg.Capacity, reqs); err != nil {
		return nil, err
	}

	d := cfg.Capacity.Dim()
	l := item.NewList(d)
	// Keep input order for ties; items get internal IDs 0..n-1 and we map
	// back through reqIDs.
	reqIDs := make([]int, 0, len(reqs))
	sorted := make([]Request, len(reqs))
	copy(sorted, reqs)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Arrive < sorted[j].Arrive })
	for _, rq := range sorted {
		norm := vector.New(d)
		for j := 0; j < d; j++ {
			norm[j] = rq.Demand[j] / cfg.Capacity[j]
		}
		l.Add(rq.Arrive, rq.Arrive+rq.Duration, norm)
		reqIDs = append(reqIDs, rq.ID)
	}

	var opts []core.Option
	if cfg.Faults != nil {
		opts = append(opts, core.WithFaults(cfg.Faults, cfg.Retry))
	}
	if cfg.MaxServers > 0 {
		opts = append(opts, core.WithMaxBins(cfg.MaxServers))
		if cfg.Queue {
			opts = append(opts, core.WithAdmissionQueue(cfg.QueueDeadline))
		}
	}
	res, err := core.Simulate(l, cfg.Policy, opts...)
	if err != nil {
		return nil, fmt.Errorf("cloudsim: %w", err)
	}

	rep := &Report{
		Policy:        res.Algorithm,
		ServersRented: res.BinsOpened,
		PeakServers:   res.MaxConcurrentBins,
		UsageTime:     res.Cost,
		PlacementOf:   make(map[int]int, len(reqs)),
	}
	rep.Crashes = res.Crashes
	rep.Evictions = res.Evictions
	rep.Retries = res.Retries
	rep.QueuedPlaced = res.QueuedPlaced
	rep.QueueDelay = res.QueueDelay
	rep.LostUsageTime = res.LostUsageTime
	for _, b := range res.Bins {
		su := ServerUsage{
			ServerID: b.BinID,
			OpenedAt: b.OpenedAt,
			ClosedAt: b.ClosedAt,
			Usage:    b.Usage(),
			Billed:   cfg.Billing.Bill(b.Usage()),
			Sessions: b.Packed,
			Crashed:  b.Crashed,
		}
		rep.BilledCost += su.Billed
		rep.Servers = append(rep.Servers, su)
	}
	// Placements are time-ordered, so later re-placements overwrite: the map
	// records where each request last ran.
	for _, p := range res.Placements {
		rep.PlacementOf[reqIDs[p.ItemID]] = p.BinID
	}
	for itemID, o := range res.Outcomes {
		switch o {
		case core.OutcomeLost:
			rep.LostIDs = append(rep.LostIDs, reqIDs[itemID])
		case core.OutcomeRejected:
			rep.RejectedIDs = append(rep.RejectedIDs, reqIDs[itemID])
		case core.OutcomeTimedOut:
			rep.TimedOutIDs = append(rep.TimedOutIDs, reqIDs[itemID])
		}
	}
	sort.Ints(rep.LostIDs)
	sort.Ints(rep.RejectedIDs)
	sort.Ints(rep.TimedOutIDs)
	return rep, nil
}

// TimelinePoint is the number of simultaneously active servers at a time.
type TimelinePoint struct {
	T       float64
	Servers int
}

// Timeline returns the active-server count sampled at every change point
// (server open/close), in time order. The last point always has Servers == 0.
// Useful for capacity planning: the peak of the timeline is the fleet size a
// reserved-instance buyer would need.
func (r *Report) Timeline() []TimelinePoint {
	type ev struct {
		t     float64
		delta int
	}
	events := make([]ev, 0, 2*len(r.Servers))
	for _, s := range r.Servers {
		events = append(events, ev{s.OpenedAt, +1}, ev{s.ClosedAt, -1})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return events[i].delta < events[j].delta // closes before opens
	})
	var out []TimelinePoint
	cur := 0
	for i := 0; i < len(events); {
		t := events[i].t
		for i < len(events) && events[i].t == t {
			cur += events[i].delta
			i++
		}
		out = append(out, TimelinePoint{T: t, Servers: cur})
	}
	return out
}

// MeanActiveServers returns the time-average number of active servers over
// the report's busy period (0 when there is no activity).
func (r *Report) MeanActiveServers() float64 {
	tl := r.Timeline()
	if len(tl) < 2 {
		return 0
	}
	area, span := 0.0, tl[len(tl)-1].T-tl[0].T
	for i := 0; i+1 < len(tl); i++ {
		area += float64(tl[i].Servers) * (tl[i+1].T - tl[i].T)
	}
	if span <= 0 {
		return 0
	}
	return area / span
}

// Compare runs the same request stream under several policies and returns the
// reports in the given order. All runs see identical inputs.
func Compare(cfg Config, reqs []Request, policies []core.Policy) ([]*Report, error) {
	out := make([]*Report, 0, len(policies))
	for _, p := range policies {
		c := cfg
		c.Policy = p
		rep, err := Run(c, reqs)
		if err != nil {
			return nil, fmt.Errorf("cloudsim: policy %s: %w", p.Name(), err)
		}
		out = append(out, rep)
	}
	return out, nil
}
