package check

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

func randomList(seed int64, n, d int) *item.List {
	r := rand.New(rand.NewSource(seed))
	l := item.NewList(d)
	for i := 0; i < n; i++ {
		a := math.Floor(r.Float64() * 60)
		dur := 1 + math.Floor(r.Float64()*15)
		size := vector.New(d)
		for j := range size {
			size[j] = float64(1+r.Intn(100)) / 100
		}
		l.Add(a, a+dur, size)
	}
	return l
}

func TestValidResultsPass(t *testing.T) {
	for seed := int64(0); seed < 5; seed++ {
		l := randomList(seed, 150, 2)
		for _, p := range core.StandardPolicies(seed) {
			res, err := core.Simulate(l, p)
			if err != nil {
				t.Fatal(err)
			}
			if err := Result(l, res); err != nil {
				t.Errorf("%s seed=%d: valid result rejected: %v", p.Name(), seed, err)
			}
		}
	}
}

func simulate(t *testing.T, l *item.List) *core.Result {
	t.Helper()
	res, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestNilAndMismatch(t *testing.T) {
	l := randomList(1, 10, 1)
	if err := Result(l, nil); err == nil {
		t.Error("nil result accepted")
	}
	res := simulate(t, l)
	other := randomList(2, 20, 1)
	if err := Result(other, res); err == nil {
		t.Error("mismatched instance accepted")
	}
}

func TestDetectsTamperedCost(t *testing.T) {
	l := randomList(3, 50, 2)
	res := simulate(t, l)
	res.Cost += 1
	if err := Result(l, res); err == nil || !strings.Contains(err.Error(), "cost") {
		t.Errorf("tampered cost not caught: %v", err)
	}
}

func TestDetectsDuplicatePlacement(t *testing.T) {
	l := randomList(4, 50, 2)
	res := simulate(t, l)
	res.Placements[1] = res.Placements[0]
	if err := Result(l, res); err == nil {
		t.Error("duplicate placement not caught")
	}
}

func TestDetectsForeignBin(t *testing.T) {
	l := randomList(5, 50, 2)
	res := simulate(t, l)
	res.Placements[0].BinID = 9999
	if err := Result(l, res); err == nil {
		t.Error("foreign bin not caught")
	}
}

func TestDetectsOverload(t *testing.T) {
	// Hand-build an infeasible "result": two items of 0.8 in one bin.
	l := item.NewList(1)
	l.Add(0, 2, vector.Of(0.8))
	l.Add(0, 2, vector.Of(0.8))
	res := &core.Result{
		Algorithm: "forged", Dim: 1, Items: 2, Cost: 2, BinsOpened: 1,
		Placements: []core.Placement{
			{ItemID: 0, BinID: 0, Time: 0, Opened: true},
			{ItemID: 1, BinID: 0, Time: 0},
		},
		Bins: []core.BinUsage{{BinID: 0, OpenedAt: 0, ClosedAt: 2, Packed: 2}},
		Span: 2,
	}
	if err := Result(l, res); err == nil || !strings.Contains(err.Error(), "overloaded") {
		t.Errorf("overload not caught: %v", err)
	}
}

func TestDetectsWrongBinTimes(t *testing.T) {
	l := randomList(6, 30, 1)
	res := simulate(t, l)
	res.Bins[0].OpenedAt -= 0.5
	err := Result(l, res)
	if err == nil {
		t.Error("wrong OpenedAt not caught")
	}
}

func TestDetectsWrongPackedCount(t *testing.T) {
	l := randomList(7, 30, 1)
	res := simulate(t, l)
	res.Bins[0].Packed += 1
	if err := Result(l, res); err == nil {
		t.Error("wrong Packed count not caught")
	}
}

func TestDetectsPhantomGapBin(t *testing.T) {
	// A bin recorded as spanning a period its items don't cover.
	l := item.NewList(1)
	l.Add(0, 1, vector.Of(0.5))
	l.Add(5, 6, vector.Of(0.5))
	res := &core.Result{
		Algorithm: "forged", Dim: 1, Items: 2, Cost: 6, BinsOpened: 1,
		Placements: []core.Placement{
			{ItemID: 0, BinID: 0, Time: 0, Opened: true},
			{ItemID: 1, BinID: 0, Time: 5},
		},
		Bins: []core.BinUsage{{BinID: 0, OpenedAt: 0, ClosedAt: 6, Packed: 2}},
		Span: 2,
	}
	if err := Result(l, res); err == nil || !strings.Contains(err.Error(), "idle gap") {
		t.Errorf("idle gap not caught: %v", err)
	}
}
