package persist

import (
	"errors"
	"fmt"
	"syscall"

	"dvbp/internal/vfs"
)

// IOError wraps a failed filesystem operation with what was being attempted.
// It is the persist layer's "the disk misbehaved" error, as opposed to
// CorruptionError's "the disk lied": an IOError leaves on-disk state honest
// (possibly behind, never wrong), so the caller may retry, degrade, or skip —
// poisoning is reserved for corruption.
type IOError struct {
	// Op names the failed operation (open, write, sync, rename, ...).
	Op string
	// Path is the file or directory involved.
	Path string
	// Err is the underlying cause (syscall errno, vfs.ErrCrashed, ...).
	Err error
}

// Error implements error.
func (e *IOError) Error() string {
	return fmt.Sprintf("persist: %s %s: %v", e.Op, e.Path, e.Err)
}

// Unwrap exposes the cause to errors.Is/As.
func (e *IOError) Unwrap() error { return e.Err }

func ioErr(op, path string, err error) *IOError {
	return &IOError{Op: op, Path: path, Err: err}
}

// ErrorClass partitions persistence failures by the recovery action they
// permit. The server's tenant workers drive their fail/degrade/retry state
// machine off it (DESIGN.md §15).
type ErrorClass int

const (
	// ClassNone: no error.
	ClassNone ErrorClass = iota
	// ClassCorruption: on-disk state is inconsistent with what was
	// acknowledged. Fail-stop — continuing would acknowledge lies.
	ClassCorruption
	// ClassDiskFull: the device is out of space (ENOSPC/EDQUOT). Retrying
	// immediately is pointless; degrade to read-only and probe until space
	// returns.
	ClassDiskFull
	// ClassTransient: an I/O error that may heal (EIO and everything else
	// wrapped in an IOError). Retry with capped backoff, then degrade.
	ClassTransient
	// ClassFatal: not an I/O outcome at all — a simulated power loss, a
	// write through a discarded writer, a programming error. Fail-stop.
	ClassFatal
)

func (c ErrorClass) String() string {
	switch c {
	case ClassNone:
		return "none"
	case ClassCorruption:
		return "corruption"
	case ClassDiskFull:
		return "disk_full"
	case ClassTransient:
		return "transient"
	default:
		return "fatal"
	}
}

// errDiscarded reports use of a Writer after Discard — always a bug in the
// caller's compaction/swap sequencing, never retryable.
var errDiscarded = errors.New("persist: writer was discarded")

// Classify maps an error onto its ErrorClass. Corruption dominates (a
// CorruptionError wrapping an errno is still corruption), then the simulated
// power loss, then the errno taxonomy; anything not wrapped as an IOError is
// fatal because the layer cannot vouch for what state it left behind.
func Classify(err error) ErrorClass {
	if err == nil {
		return ClassNone
	}
	var ce *CorruptionError
	if errors.As(err, &ce) {
		return ClassCorruption
	}
	if errors.Is(err, vfs.ErrCrashed) || errors.Is(err, errDiscarded) {
		return ClassFatal
	}
	if errors.Is(err, syscall.ENOSPC) || errors.Is(err, syscall.EDQUOT) {
		return ClassDiskFull
	}
	var ioe *IOError
	if errors.As(err, &ioe) {
		return ClassTransient
	}
	return ClassFatal
}

// Recoverable reports whether the error is one the disk can heal from —
// retry (transient) or wait for space (disk full). Corruption and fatal
// errors are not recoverable: the caller must stop acknowledging.
func Recoverable(err error) bool {
	c := Classify(err)
	return c == ClassDiskFull || c == ClassTransient
}
