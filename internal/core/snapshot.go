package core

import (
	"bytes"
	"fmt"
	"sort"

	"dvbp/internal/item"
)

// Snapshot is a complete, self-contained capture of an Engine's state at an
// event boundary — between two Steps (or before the first). It is plain data:
// no pointers into the live engine, so the persistence layer can serialise it
// and a later process can rebuild an equivalent engine with RestoreEngine.
//
// A snapshot does NOT embed the instance or the run options. Restore is
// handed the same item list, a policy of the same name, and the same Options
// as the original run; the snapshot records only what a deterministic re-run
// from time zero would have accumulated by EventSeq. The persistence layer
// stores the identifying metadata (workload hash, policy name, fault plan)
// alongside and refuses mismatched restores.
type Snapshot struct {
	// EventSeq is the number of events committed before the capture.
	EventSeq int64
	// ArrivalIdx is the index of the next unconsumed arrival in the
	// (arrival, SeqNo)-sorted item order.
	ArrivalIdx int
	// NextBinID is the ID the next opened bin will receive.
	NextBinID int
	// Served is the number of items that have departed normally.
	Served int
	// RetrySeq is the tie-break sequence counter of the retry queue.
	RetrySeq int64

	// Dim and Items identify the instance shape, cross-checked on restore.
	Dim   int
	Items int

	// PolicyName is the registry name of the policy; PolicyState is its
	// PolicyStateCodec payload (nil for stateless policies).
	PolicyName  string
	PolicyState []byte

	// Bins are the open bins in opening order (ascending ID).
	Bins []BinSnapshot

	// Pending event queues, each in delivery order.
	Departures []DepartureSnapshot
	Crashes    []CrashSnapshot
	Retries    []RetrySnapshot

	// WaitQueue is the admission queue in FIFO order.
	WaitQueue []QueuedSnapshot

	// Attempts maps item ID to its eviction count so far (nil when no crash
	// has happened).
	Attempts map[int]int

	// Result is a deep copy of the partial result accumulated so far — the
	// usage-time cost of already-closed bins, placements, outcomes, and all
	// failure counters.
	Result *Result

	// Migration is the consolidation-pass state (nil iff the run was built
	// without WithMigration). Capturing the staged moves is what makes a
	// SIGKILL between two moves of one pass recoverable: the restored engine
	// resumes the pass mid-plan instead of replanning against a half-applied
	// state.
	Migration *MigrationSnapshot
}

// MigrationSnapshot captures the engine's migration state (DESIGN.md §14).
type MigrationSnapshot struct {
	// NextPass is the 1-based number of the next consolidation pass to
	// attempt (pass n fires at period·n).
	NextPass int64
	// PassTime is the staged pass's instant (meaningful only when Pending is
	// non-empty).
	PassTime float64
	// Pending are the staged moves not yet committed, in application order.
	Pending []MigrationMove
	// Redirects are the live departure-queue redirections of migrated items,
	// ascending by Seq.
	Redirects []RedirectSnapshot
}

// RedirectSnapshot maps one departure-queue key (depSeq: item-ID major,
// attempt minor) to the bin the item currently occupies.
type RedirectSnapshot struct {
	Seq   int64
	BinID int
}

// BinSnapshot captures one open bin.
type BinSnapshot struct {
	ID       int
	OpenedAt float64
	// Packed is the number of items ever packed into the bin.
	Packed int
	// ActiveIDs are the currently active item IDs, ascending. The items'
	// sizes are recovered from the instance on restore.
	ActiveIDs []int
	// Acc holds the exact per-dimension load accumulator state
	// (vector.Acc.AppendBinary payloads), one per dimension. Restore
	// cross-checks it against the accumulator rebuilt from ActiveIDs: the
	// limbs are a pure function of the active multiset, so any divergence
	// means the snapshot is corrupt.
	Acc [][]byte
}

// DepartureSnapshot is one pending departure event.
type DepartureSnapshot struct {
	Time float64
	// Seq is the queue's tie-break key (depSeq: item-ID major, placement
	// attempt minor).
	Seq    int64
	ItemID int
	// BinID is the bin the item was packed into. It may reference a bin that
	// has since crashed; such stale entries are preserved (the engine skips
	// them when they fire, and dropping them would change nothing but the
	// queue's internal state the determinism check compares).
	BinID int
}

// CrashSnapshot is one pending fault-injection crash event. BinID may
// reference a bin that already closed naturally (the engine ignores the
// event when it fires).
type CrashSnapshot struct {
	Time  float64
	BinID int
}

// RetrySnapshot is one pending re-dispatch of an evicted item.
type RetrySnapshot struct {
	Time float64
	// Seq is the retry queue's tie-break sequence (assignment order).
	Seq     int64
	ItemID  int
	Attempt int
}

// QueuedSnapshot is one admission-queue entry.
type QueuedSnapshot struct {
	ItemID   int
	Attempt  int
	QueuedAt float64
	Deadline float64
}

// cloneResult deep-copies a partial result so the snapshot cannot alias the
// live engine's accumulators.
func cloneResult(r *Result) *Result {
	c := *r
	c.Placements = append([]Placement(nil), r.Placements...)
	c.Bins = append([]BinUsage(nil), r.Bins...)
	c.Outcomes = make(map[int]Outcome, len(r.Outcomes))
	for k, v := range r.Outcomes {
		c.Outcomes[k] = v
	}
	return &c
}

// Snapshot captures the engine's complete state at the current event
// boundary. It fails on a poisoned or finished engine, and for stateful
// policies that implement no PolicyStateCodec (see CheckpointablePolicy).
// The engine is unchanged apart from compaction of its open-bin slice, which
// the next dispatch would perform anyway.
func (e *Engine) Snapshot() (*Snapshot, error) {
	if e.err != nil {
		return nil, fmt.Errorf("core: cannot snapshot a failed engine: %w", e.err)
	}
	if e.finished {
		return nil, fmt.Errorf("core: cannot snapshot a finished engine")
	}
	ps, err := marshalPolicyState(e.p)
	if err != nil {
		return nil, err
	}
	e.compact()

	s := &Snapshot{
		EventSeq:    e.eventSeq,
		ArrivalIdx:  e.ai,
		NextBinID:   e.nextBinID,
		Served:      e.served,
		RetrySeq:    e.retrySeq,
		Dim:         e.list.Dim,
		Items:       e.list.Len(),
		PolicyName:  e.p.Name(),
		PolicyState: ps,
		Result:      cloneResult(e.res),
	}

	s.Bins = make([]BinSnapshot, 0, len(e.open))
	for _, b := range e.open {
		bs := BinSnapshot{
			ID:        b.ID,
			OpenedAt:  b.OpenedAt,
			Packed:    b.packed,
			ActiveIDs: b.ActiveItemIDs(),
			Acc:       make([][]byte, len(b.acc)),
		}
		for j := range b.acc {
			bs.Acc[j] = b.acc[j].AppendBinary(nil)
		}
		s.Bins = append(s.Bins, bs)
	}

	for _, ev := range e.departures.Sorted() {
		s.Departures = append(s.Departures, DepartureSnapshot{Time: ev.Time, Seq: ev.Seq, ItemID: ev.Payload.itemID, BinID: ev.Payload.binID})
	}
	for _, ev := range e.crashes.Sorted() {
		s.Crashes = append(s.Crashes, CrashSnapshot{Time: ev.Time, BinID: ev.Payload})
	}
	for _, ev := range e.retries.Sorted() {
		s.Retries = append(s.Retries, RetrySnapshot{Time: ev.Time, Seq: ev.Seq, ItemID: ev.Payload.it.ID, Attempt: ev.Payload.attempt})
	}
	for _, q := range e.waitq {
		s.WaitQueue = append(s.WaitQueue, QueuedSnapshot{ItemID: q.it.ID, Attempt: q.attempt, QueuedAt: q.queuedAt, Deadline: q.deadline})
	}
	if e.attempts != nil {
		s.Attempts = make(map[int]int, len(e.attempts))
		for k, v := range e.attempts {
			s.Attempts[k] = v
		}
	}
	if e.cfg.migrate != nil {
		m := &MigrationSnapshot{
			NextPass: e.migPass,
			Pending:  append([]MigrationMove(nil), e.pendingMoves...),
		}
		if len(e.pendingMoves) > 0 {
			m.PassTime = e.passTime
		}
		m.Redirects = make([]RedirectSnapshot, 0, len(e.redirects))
		for seq, binID := range e.redirects {
			m.Redirects = append(m.Redirects, RedirectSnapshot{Seq: seq, BinID: binID})
		}
		sort.Slice(m.Redirects, func(i, j int) bool { return m.Redirects[i].Seq < m.Redirects[j].Seq })
		s.Migration = m
	}
	return s, nil
}

// corruptf builds the error RestoreEngine surfaces for internally
// inconsistent snapshots. The persistence layer wraps it into its structured
// CorruptionError; within core it is a plain error.
func corruptf(format string, args ...any) error {
	return fmt.Errorf("core: inconsistent snapshot: "+format, args...)
}

// RestoreEngine rebuilds an engine from a snapshot taken by Snapshot. The
// caller supplies the same instance, a policy with the snapshot's name, and
// the same Options as the original run; the restored engine then regenerates
// the original run's remaining events bit for bit (the determinism contract
// replay verification is built on).
//
// Every structural claim the snapshot makes is validated — unknown item or
// bin IDs, duplicated active items, accumulator limbs that disagree with the
// active multiset — and violations surface as errors, never panics, so
// corrupted checkpoint files degrade gracefully. Like NewEngine, the returned
// engine owns p until Finish or Close.
func RestoreEngine(l *item.List, p Policy, s *Snapshot, opts ...Option) (*Engine, error) {
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if err := validateList(l, cfg.dynamic); err != nil {
		return nil, err
	}
	if s == nil {
		return nil, fmt.Errorf("core: nil snapshot")
	}
	// A dynamic run's list grows after any checkpoint, so the snapshot may
	// cover a strict prefix of the supplied instance; a static run's list is
	// immutable and must match exactly.
	if s.Dim != l.Dim || s.Items > l.Len() || (!cfg.dynamic && s.Items != l.Len()) {
		return nil, corruptf("instance shape mismatch: snapshot d=%d n=%d, instance d=%d n=%d", s.Dim, s.Items, l.Dim, l.Len())
	}
	if s.PolicyName != p.Name() {
		return nil, corruptf("policy mismatch: snapshot %q, supplied %q", s.PolicyName, p.Name())
	}
	if s.Result == nil {
		return nil, corruptf("missing partial result")
	}
	if cfg.injector != nil && cfg.retry == nil {
		cfg.retry = retryNow{}
	}
	if err := acquirePolicy(p); err != nil {
		return nil, err
	}
	p.Reset()
	e := newEngineShell(l, p, cfg)
	ok := false
	defer func() {
		if !ok {
			e.Close()
		}
	}()
	e.arrivals = l.SortedByArrival()

	if s.ArrivalIdx < 0 || s.ArrivalIdx > len(e.arrivals) {
		return nil, corruptf("arrival index %d outside [0, %d]", s.ArrivalIdx, len(e.arrivals))
	}
	if s.EventSeq < 0 || s.NextBinID < 0 || s.Served < 0 || s.RetrySeq < 0 {
		return nil, corruptf("negative progress counter")
	}
	e.ai = s.ArrivalIdx
	e.eventSeq = s.EventSeq
	e.nextBinID = s.NextBinID
	e.served = s.Served
	e.retrySeq = s.RetrySeq

	// Rebuild the open bins. Active sizes come from the instance; the
	// accumulator limbs are rebuilt from the active multiset (the same pure
	// function the live engine maintains incrementally) and then compared
	// byte-for-byte against the snapshot's captured limbs — a free integrity
	// check on both the item set and the recorded loads.
	activeOwner := make(map[int]int, len(s.Bins))
	prevID := -1
	for _, bs := range s.Bins {
		if bs.ID <= prevID {
			return nil, corruptf("bins out of order: %d after %d", bs.ID, prevID)
		}
		prevID = bs.ID
		if bs.ID >= s.NextBinID {
			return nil, corruptf("open bin %d >= next bin ID %d", bs.ID, s.NextBinID)
		}
		if len(bs.Acc) != l.Dim {
			return nil, corruptf("bin %d has %d accumulator dimensions, want %d", bs.ID, len(bs.Acc), l.Dim)
		}
		if len(bs.ActiveIDs) == 0 {
			return nil, corruptf("bin %d is open but empty", bs.ID)
		}
		if bs.Packed < len(bs.ActiveIDs) {
			return nil, corruptf("bin %d packed %d < %d active", bs.ID, bs.Packed, len(bs.ActiveIDs))
		}
		b := newBin(bs.ID, l.Dim, bs.OpenedAt)
		b.packed = bs.Packed
		for _, id := range bs.ActiveIDs {
			it, known := e.itemsByID[id]
			if !known {
				return nil, corruptf("bin %d holds unknown item %d", bs.ID, id)
			}
			if owner, dup := activeOwner[id]; dup {
				return nil, corruptf("item %d active in bins %d and %d", id, owner, bs.ID)
			}
			activeOwner[id] = bs.ID
			b.active[id] = it.Size
		}
		b.refreshLoadFromActive()
		for j := range b.acc {
			if got := b.acc[j].AppendBinary(nil); !bytes.Equal(got, bs.Acc[j]) {
				return nil, corruptf("bin %d dimension %d: snapshot load limbs disagree with active item set", bs.ID, j)
			}
		}
		b.openIdx = len(e.open)
		b.probe = e.probe
		e.open = append(e.open, b)
		e.binsByID[b.ID] = b
	}

	// Re-prime the event queues. Pushing in delivery order reproduces the
	// original delivery order exactly: pop order is a pure function of the
	// (Time, Seq) multiset, and each queue's Seq is reconstructible
	// (departures are keyed by item ID, crashes by bin ID, retries carry
	// their assigned sequence).
	for i, d := range s.Departures {
		if _, known := e.itemsByID[d.ItemID]; !known {
			return nil, corruptf("departure %d references unknown item %d", i, d.ItemID)
		}
		if d.Seq>>32 != int64(d.ItemID) {
			return nil, corruptf("departure %d has sequence %d inconsistent with item %d", i, d.Seq, d.ItemID)
		}
		e.departures.PushAt(d.Time, d.Seq, departure{itemID: d.ItemID, binID: d.BinID})
	}
	for i, c := range s.Crashes {
		if cfg.injector == nil {
			return nil, corruptf("crash event %d in a snapshot restored without fault injection", i)
		}
		e.crashes.PushAt(c.Time, int64(c.BinID), c.BinID)
	}
	for i, r := range s.Retries {
		it, known := e.itemsByID[r.ItemID]
		if !known {
			return nil, corruptf("retry %d references unknown item %d", i, r.ItemID)
		}
		if r.Seq <= 0 || r.Seq > s.RetrySeq {
			return nil, corruptf("retry %d has sequence %d outside (0, %d]", i, r.Seq, s.RetrySeq)
		}
		if r.Attempt < 1 {
			return nil, corruptf("retry %d has attempt %d < 1", i, r.Attempt)
		}
		e.retries.PushAt(r.Time, r.Seq, retryDispatch{it: it, attempt: r.Attempt})
	}
	for i, q := range s.WaitQueue {
		it, known := e.itemsByID[q.ItemID]
		if !known {
			return nil, corruptf("queue entry %d references unknown item %d", i, q.ItemID)
		}
		e.waitq = append(e.waitq, queuedDispatch{it: it, attempt: q.Attempt, queuedAt: q.QueuedAt, deadline: q.Deadline})
	}
	if s.Attempts != nil {
		e.attempts = make(map[int]int, len(s.Attempts))
		for id, n := range s.Attempts {
			if _, known := e.itemsByID[id]; !known {
				return nil, corruptf("attempt count for unknown item %d", id)
			}
			if n < 1 {
				return nil, corruptf("item %d has attempt count %d < 1", id, n)
			}
			e.attempts[id] = n
		}
	}

	// Migration state travels with the snapshot exactly when the run is
	// configured for it, mirroring the crash-event/injector pairing above.
	if cfg.migrate == nil && s.Migration != nil {
		return nil, corruptf("migration state in a snapshot restored without WithMigration")
	}
	if cfg.migrate != nil {
		m := s.Migration
		if m == nil {
			return nil, corruptf("snapshot of a migrating run carries no migration state")
		}
		if m.NextPass < 1 {
			return nil, corruptf("migration pass counter %d < 1", m.NextPass)
		}
		if len(m.Pending) > cfg.migrate.budget.MaxMoves {
			return nil, corruptf("%d staged moves exceed the per-pass budget %d", len(m.Pending), cfg.migrate.budget.MaxMoves)
		}
		for i, mv := range m.Pending {
			if mv.From == mv.To {
				return nil, corruptf("staged move %d relocates item %d from bin %d to itself", i, mv.ItemID, mv.From)
			}
			from, known := e.binsByID[mv.From]
			if !known {
				return nil, corruptf("staged move %d names unknown source bin %d", i, mv.From)
			}
			if _, known := e.binsByID[mv.To]; !known {
				return nil, corruptf("staged move %d names unknown target bin %d", i, mv.To)
			}
			if _, active := from.active[mv.ItemID]; !active {
				return nil, corruptf("staged move %d: item %d is not active in bin %d", i, mv.ItemID, mv.From)
			}
		}
		e.migPass = m.NextPass
		if len(m.Pending) > 0 {
			e.pendingMoves = append([]MigrationMove(nil), m.Pending...)
			e.passTime = m.PassTime
		}
		prevSeq := int64(-1)
		for i, r := range m.Redirects {
			if r.Seq <= prevSeq {
				return nil, corruptf("redirect %d out of sequence order", i)
			}
			prevSeq = r.Seq
			itemID := int(r.Seq >> 32)
			if _, known := e.itemsByID[itemID]; !known {
				return nil, corruptf("redirect %d references unknown item %d", i, itemID)
			}
			if cfg.injector == nil {
				// Without crashes a redirected item is always active in its
				// redirect target; with them the target may legitimately be a
				// bin that has since crashed (the stale-skip path).
				b, known := e.binsByID[r.BinID]
				if !known {
					return nil, corruptf("redirect %d references unknown bin %d", i, r.BinID)
				}
				if _, active := b.active[itemID]; !active {
					return nil, corruptf("redirect %d: item %d is not active in bin %d", i, itemID, r.BinID)
				}
			}
			if e.redirects == nil {
				e.redirects = make(map[int64]int, len(m.Redirects))
			}
			e.redirects[r.Seq] = r.BinID
		}
	}

	e.res = cloneResult(s.Result)

	resolve := func(id int) *Bin { return e.binsByID[id] }
	if err := unmarshalPolicyState(p, s.PolicyState, resolve); err != nil {
		return nil, err
	}

	// Rebuild the indexed bin store. Insertion order (ascending bin ID) does
	// not affect answers — they are a pure function of the key order — and
	// keyed profiles compute keys from the restored loads, which the limb
	// check above proved bit-identical to the original run's. Recency
	// profiles are then re-keyed from the restored policy state (which must
	// cover the open set exactly), so the rebuilt order, and hence every
	// later decision, matches the uninterrupted run.
	if e.idx != nil {
		for _, b := range e.open {
			e.idxInsert(b)
		}
		if e.ixRekey != nil {
			if err := e.ixRekey(e.idx); err != nil {
				return nil, corruptf("rebuilding %s bin index: %v", p.Name(), err)
			}
		}
	}
	ok = true
	return e, nil
}
