package exactopt

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/lowerbound"
	"dvbp/internal/offline"
	"dvbp/internal/vector"
)

func v(xs ...float64) vector.Vector { return vector.Of(xs...) }

func TestMinBinsBasics(t *testing.T) {
	cases := []struct {
		name  string
		sizes []vector.Vector
		want  int
	}{
		{"empty", nil, 0},
		{"single", []vector.Vector{v(0.5)}, 1},
		{"two fit", []vector.Vector{v(0.5), v(0.5)}, 1},
		{"two conflict", []vector.Vector{v(0.6), v(0.6)}, 2},
		{"three thirds", []vector.Vector{v(0.34), v(0.34), v(0.34)}, 2},
		{"exact thirds", []vector.Vector{v(1.0 / 4), v(1.0 / 4), v(1.0 / 4), v(1.0 / 4)}, 1},
		{"2d conflict dim2", []vector.Vector{v(0.1, 0.9), v(0.1, 0.9)}, 2},
		{"2d complementary", []vector.Vector{v(0.9, 0.1), v(0.1, 0.9)}, 1},
		{"mixed", []vector.Vector{v(0.7), v(0.7), v(0.3), v(0.3)}, 2},
		{"tricky pairing", []vector.Vector{v(0.6, 0.2), v(0.4, 0.8), v(0.5, 0.5), v(0.5, 0.5)}, 2},
	}
	for _, c := range cases {
		if got := MinBins(c.sizes); got != c.want {
			t.Errorf("%s: MinBins = %d, want %d", c.name, got, c.want)
		}
	}
}

func TestMinBinsPanicsBeyondCap(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	MinBins(make([]vector.Vector, 25))
}

// Property: MinBins is between the volume bound ⌈max_j Σ sizes_j⌉ and n.
func TestMinBinsBounds(t *testing.T) {
	r := rand.New(rand.NewSource(5))
	f := func(nRaw, dRaw uint8) bool {
		n := int(nRaw%10) + 1
		d := int(dRaw%3) + 1
		sizes := make([]vector.Vector, n)
		total := vector.New(d)
		for i := range sizes {
			sizes[i] = vector.New(d)
			for j := range sizes[i] {
				sizes[i][j] = float64(1+r.Intn(100)) / 100
			}
			total.AddInPlace(sizes[i])
		}
		got := MinBins(sizes)
		lo := int(math.Ceil(total.MaxNorm() - 1e-9))
		return got >= lo && got <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: MinBins never beats a first-fit-decreasing heuristic's count but
// is at most it (exactness check against a feasible upper bound).
func TestMinBinsAtMostGreedy(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	f := func(nRaw uint8) bool {
		n := int(nRaw%9) + 1
		sizes := make([]vector.Vector, n)
		for i := range sizes {
			sizes[i] = v(float64(1+r.Intn(100))/100, float64(1+r.Intn(100))/100)
		}
		greedy := greedyBins(sizes)
		got := MinBins(sizes)
		return got <= greedy
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func greedyBins(sizes []vector.Vector) int {
	var bins []vector.Vector
	for _, s := range sizes {
		placed := false
		for i := range bins {
			if bins[i].FitsWithin(s) {
				bins[i].AddInPlace(s)
				placed = true
				break
			}
		}
		if !placed {
			bins = append(bins, s.Clone())
		}
	}
	return len(bins)
}

func TestOptSimpleTimeline(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 2, v(0.8)) // alone on [0,1): 1 bin
	l.Add(1, 3, v(0.8)) // overlap [1,2): 2 bins; alone [2,3): 1 bin
	got, err := Opt(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-4) > 1e-9 {
		t.Errorf("Opt = %v, want 4", got)
	}
}

func TestOptRepackingBeatsOnline(t *testing.T) {
	// The repacking OPT can be strictly below every no-repacking algorithm:
	// item A [0,2) size .6, item B [0,1) size .6, item C [1,2) size .3.
	// Online (no repack): A alone in bin 1 for [0,2), B bin 2, C joins A.
	// cost FF = 2 + 1 = 3. Repacking OPT: [0,1): {A,B} need 2 bins; [1,2):
	// {A,C} fit one bin -> OPT = 2+1 = 3. Same here; use a sharper case:
	l := item.NewList(1)
	l.Add(0, 10, v(0.3))
	l.Add(0, 10, v(0.3))
	l.Add(0, 1, v(0.6)) // forces a second bin only on [0,1)
	got, err := Opt(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// [0,1): items {.3,.3,.6}: MinBins = 2. [1,10): {.3,.3}: 1 bin.
	want := 2 + 9.0
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("Opt = %v, want %v", got, want)
	}
}

func TestOptGapsAndHalfOpen(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 1, v(0.9))
	l.Add(1, 2, v(0.9)) // arrives exactly at the departure: never overlap
	l.Add(5, 6, v(0.5)) // gap [2,5)
	got, err := Opt(l, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-3) > 1e-9 {
		t.Errorf("Opt = %v, want 3", got)
	}
}

func TestOptTooLarge(t *testing.T) {
	l := item.NewList(1)
	for i := 0; i < 20; i++ {
		l.Add(0, 1, v(0.01))
	}
	_, err := Opt(l, Options{MaxActive: 10})
	if !errors.Is(err, ErrTooLarge) {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
	if _, err := Opt(l, Options{MaxActive: 30}); err == nil {
		t.Error("MaxActive over the hard cap accepted")
	}
}

func TestPeakActive(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 10, v(0.1))
	l.Add(1, 3, v(0.1))
	l.Add(2, 4, v(0.1))
	l.Add(3, 5, v(0.1)) // at t=3 item 1 departs first: peak is 3
	if got := PeakActive(l); got != 3 {
		t.Errorf("PeakActive = %d, want 3", got)
	}
}

func randomSmallList(seed int64, n, d int) *item.List {
	r := rand.New(rand.NewSource(seed))
	l := item.NewList(d)
	for i := 0; i < n; i++ {
		a := math.Floor(r.Float64() * 40)
		dur := 1 + math.Floor(r.Float64()*8)
		size := vector.New(d)
		for j := range size {
			size[j] = float64(1+r.Intn(100)) / 100
		}
		l.Add(a, a+dur, size)
	}
	return l
}

// TestOptBracketedByBoundsAndHeuristics: on random small instances,
// Lemma1 LB <= exact OPT <= offline heuristic cost <= ... and every online
// algorithm costs at least OPT.
func TestOptBracketedByBoundsAndHeuristics(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		l := randomSmallList(seed, 25, 2)
		if PeakActive(l) > DefaultMaxActive {
			continue
		}
		opt, err := Opt(l, Options{})
		if err != nil {
			t.Fatal(err)
		}
		lb := lowerbound.Compute(l)
		if lb.Best() > opt+1e-9 {
			t.Errorf("seed %d: LB %v > exact OPT %v", seed, lb.Best(), opt)
		}
		up, err := offline.BestUpperEstimate(l)
		if err != nil {
			t.Fatal(err)
		}
		if up.Cost < opt-1e-9 {
			t.Errorf("seed %d: offline %v beat exact OPT %v (impossible)", seed, up.Cost, opt)
		}
		for _, p := range core.StandardPolicies(seed) {
			res, err := core.Simulate(l, p)
			if err != nil {
				t.Fatal(err)
			}
			if res.Cost < opt-1e-9 {
				t.Errorf("seed %d: %s cost %v below exact OPT %v", seed, p.Name(), res.Cost, opt)
			}
		}
	}
}

// TestTrueRatiosRespectTable1Bounds: with exact OPT, the *true* competitive
// ratios on random small instances must respect the Table 1 upper bounds.
func TestTrueRatiosRespectTable1Bounds(t *testing.T) {
	for seed := int64(30); seed < 40; seed++ {
		l := randomSmallList(seed, 25, 2)
		if PeakActive(l) > DefaultMaxActive {
			continue
		}
		opt, err := Opt(l, Options{})
		if err != nil {
			t.Fatal(err)
		}
		mu := l.Mu()
		d := float64(l.Dim)
		bounds := map[string]float64{
			"MoveToFront": (2*mu+1)*d + 1,
			"FirstFit":    (mu+2)*d + 1,
			"NextFit":     2*mu*d + 1,
		}
		for name, bound := range bounds {
			p, err := core.NewPolicy(name, seed)
			if err != nil {
				t.Fatal(err)
			}
			res, err := core.Simulate(l, p)
			if err != nil {
				t.Fatal(err)
			}
			if ratio := res.Cost / opt; ratio > bound+1e-9 {
				t.Errorf("seed %d: %s true ratio %v exceeds bound %v", seed, name, ratio, bound)
			}
		}
	}
}

// TestTheorem8CertificateTight: on the small Theorem 8 instance the exact
// OPT equals the proof's certificate μ + n... or better. Verify OPT <= cert
// and that the true MTF ratio is at least the certified one.
func TestTheorem8CertificateVsExact(t *testing.T) {
	l := item.NewList(1)
	const n, mu = 3, 6.0
	for i := 1; i <= 4*n; i++ {
		if i%2 == 1 {
			l.Add(0, 1, v(0.5))
		} else {
			l.Add(0, mu, v(1.0/(2*n)))
		}
	}
	opt, err := Opt(l, Options{MaxActive: 12})
	if err != nil {
		t.Fatal(err)
	}
	cert := mu + n
	if opt > cert+1e-9 {
		t.Errorf("exact OPT %v exceeds certificate %v", opt, cert)
	}
	res, err := core.Simulate(l, core.NewMoveToFront())
	if err != nil {
		t.Fatal(err)
	}
	trueRatio := res.Cost / opt
	certRatio := res.Cost / cert
	if trueRatio < certRatio-1e-9 {
		t.Errorf("true ratio %v below certified %v", trueRatio, certRatio)
	}
}

func BenchmarkMinBins12(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	sizes := make([]vector.Vector, 12)
	for i := range sizes {
		sizes[i] = v(float64(1+r.Intn(60))/100, float64(1+r.Intn(60))/100)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MinBins(sizes)
	}
}

func BenchmarkExactOpt(b *testing.B) {
	l := randomSmallList(1, 25, 2)
	if PeakActive(l) > DefaultMaxActive {
		b.Skip("peak too high for exact OPT")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Opt(l, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
