package faults

import (
	"sync"
	"testing"
)

// TestMTBFStatelessUnderConcurrency pins the injector's core contract: crash
// schedules are pure functions of (Seed, binID), so concurrent engines
// sharing one MTBF value (it is copied by value into each run's config, but
// even literal sharing must be safe) see exactly the sequential schedule —
// no hidden RNG state, no call-order dependence. Run under -race.
func TestMTBFStatelessUnderConcurrency(t *testing.T) {
	m := MTBF{Mean: 50, Seed: 42}
	const bins = 500

	want := make([]float64, bins)
	for id := range want {
		at, ok := m.BinOpened(id, float64(id))
		if !ok {
			t.Fatalf("bin %d: no crash scheduled", id)
		}
		want[id] = at
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the bins in a different order.
			for k := 0; k < bins; k++ {
				id := (k*7 + g*13) % bins
				at, ok := m.BinOpened(id, float64(id))
				if !ok || at != want[id] {
					t.Errorf("goroutine %d: bin %d = (%v, %v), want (%v, true)", g, id, at, ok, want[id])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestTraceConcurrentReads verifies a Trace can serve concurrent engines:
// its per-bin schedule map is immutable after construction.
func TestTraceConcurrentReads(t *testing.T) {
	events := []TraceEvent{{BinID: 0, At: 5}, {BinID: 1, At: 7}, {BinID: 3, At: 2}}
	tr, err := NewTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				for _, ev := range events {
					at, ok := tr.BinOpened(ev.BinID, 0)
					if !ok || at != ev.At {
						t.Errorf("bin %d = (%v, %v), want (%v, true)", ev.BinID, at, ok, ev.At)
						return
					}
				}
				if _, ok := tr.BinOpened(99, 0); ok {
					t.Error("bin 99 should have no scheduled crash")
					return
				}
			}
		}()
	}
	wg.Wait()
}
