package core

import "math/rand"

// RandomFit packs an arriving item into a bin chosen uniformly at random
// among the open bins that can hold it (Section 7). It is an Any Fit
// algorithm: a new bin is opened only when no open bin fits.
//
// RandomFit is deterministic given its seed; Reset re-seeds so repeated runs
// of the same instance reproduce the same packing.
type RandomFit struct {
	seed int64
	rng  *rand.Rand
}

// NewRandomFit returns a Random Fit policy driven by the given seed.
func NewRandomFit(seed int64) *RandomFit {
	return &RandomFit{seed: seed, rng: rand.New(rand.NewSource(seed))}
}

// Name implements Policy.
func (*RandomFit) Name() string { return "RandomFit" }

// Reset implements Policy: restores the initial RNG state.
func (rf *RandomFit) Reset() { rf.rng = rand.New(rand.NewSource(rf.seed)) }

// Select implements Policy using reservoir sampling over the fitting bins, so
// a single pass suffices and each fitting bin is equally likely.
func (rf *RandomFit) Select(req Request, open []*Bin) *Bin {
	var chosen *Bin
	n := 0
	for _, b := range open {
		if !b.Fits(req.Size) {
			continue
		}
		n++
		if rf.rng.Intn(n) == 0 {
			chosen = b
		}
	}
	return chosen
}

// OnPack implements Policy.
func (*RandomFit) OnPack(Request, *Bin, bool) {}

// OnClose implements Policy.
func (*RandomFit) OnClose(*Bin) {}
