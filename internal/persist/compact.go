package persist

import (
	"encoding/binary"
	"path/filepath"

	"dvbp/internal/vfs"
)

// WAL compaction (DESIGN.md §15). Once a snapshot at event k is durable, the
// WAL's prefix 1..k is dead weight: recovery restores the snapshot and
// replays only k+1..n. Compact rewrites the WAL as
//
//	header | meta | marker(k) | events k+1..n
//
// via the usual write-temp + rename + dir-sync dance, so a power loss at any
// point leaves either the old WAL or the new one — both consistent with the
// durable snapshot. The marker record carries the truncation base so replay
// numbering stays verifiable: the j-th surviving event must claim sequence
// k+j. Its first byte sits outside the event-class range, so no event record
// can be mistaken for it (and vice versa — DecodeEventRecord rejects it).
//
// Ordering rules, in the order they matter:
//
//  1. snapshot at k durable (Checkpoint: WAL synced first, snapshot renamed
//     + dir-synced) BEFORE the WAL prefix may go;
//  2. the new WAL durable under the final name BEFORE the old snapshots
//     below k may go;
//  3. pruning old snapshots is garbage collection, safe to lose — a crash
//     between 2 and 3 leaves harmless extra files the next compaction sweeps.

// compactMarkerByte tags the compaction marker record. Event records start
// with an EventClass (small integers well below this); DecodeEventRecord
// rejects the byte, and decodeCompactMarker rejects event records.
const compactMarkerByte = 0xC7

// encodeCompactMarker serialises a marker claiming the WAL was truncated at
// base (events 1..base removed; a snapshot at base or later must exist).
func encodeCompactMarker(base int64) []byte {
	dst := []byte{compactMarkerByte}
	return binary.AppendVarint(dst, base)
}

// isCompactMarker reports whether payload is a marker record.
func isCompactMarker(payload []byte) bool {
	return len(payload) > 0 && payload[0] == compactMarkerByte
}

// decodeCompactMarker is the inverse of encodeCompactMarker; malformed input
// returns a *CorruptionError.
func decodeCompactMarker(payload []byte) (int64, error) {
	if !isCompactMarker(payload) {
		return 0, corrupt("not a compaction marker")
	}
	base, n, ok := canonVarint(payload[1:])
	if !ok || n != len(payload)-1 {
		return 0, corrupt("malformed compaction marker")
	}
	if base < 1 {
		return 0, corrupt("compaction marker claims base %d < 1", base)
	}
	return base, nil
}

// Compact truncates the WAL prefix covered by the session's newest durable
// snapshot and prunes snapshots below the new base. A no-op (nil) when no
// snapshot is ahead of the current base. On-disk WAL size afterwards is
// O(events since that snapshot), so a run that checkpoints every E events
// keeps its directory at O(E) regardless of run length.
//
// Failure atomicity: every error return leaves the old WAL intact and the
// session writing to it — except a failed reopen after the atomic swap,
// which discards the writer and returns a fatal error (the session cannot
// continue on a file it cannot open; recovery handles it like any crash).
func (s *Session) Compact() error {
	if s.lastSnap <= s.walBase {
		return nil // nothing durable to drop
	}
	// Everything must be durable before the only copy of the suffix moves.
	if err := s.wal.Sync(); err != nil {
		return err
	}
	path := filepath.Join(s.cfg.Dir, walFile)
	fd, err := ReadFile(s.fsys, path)
	if err != nil {
		return err
	}
	if fd.Torn != nil {
		return fd.Torn // a just-synced WAL must read back clean
	}
	if len(fd.Records) == 0 {
		return corrupt("compacting %s: no records", path)
	}
	content := appendHeader(nil, KindWAL)
	content = appendRecord(content, fd.Records[0]) // meta, verbatim
	content = appendRecord(content, encodeCompactMarker(s.lastSnap))
	evs := fd.Records[1:]
	if len(evs) > 0 && isCompactMarker(evs[0]) {
		evs = evs[1:]
	}
	skip := s.lastSnap - s.walBase
	if skip > int64(len(evs)) {
		return corrupt("compacting %s: snapshot at %d but only %d events past base %d", path, s.lastSnap, len(evs), s.walBase)
	}
	for _, r := range evs[skip:] {
		content = appendRecord(content, r)
	}
	oldSize := fd.Size
	if err := writeFileAtomic(s.fsys, path, content); err != nil {
		return err
	}
	// The old descriptor now points at an unlinked inode; swap writers.
	s.wal.Discard()
	w, err := openAppend(s.fsys, path, int64(len(content)), s.cfg.SyncEvery)
	if err != nil {
		// The new WAL is durable and consistent but this session lost its
		// handle; only recovery can continue. Poison the session.
		s.wal = &Writer{discarded: true}
		return &CorruptionError{Run: s.cfg.Label, Path: path, Offset: -1, Record: -1,
			Reason: "compaction swapped the WAL but could not reopen it", Err: err}
	}
	s.wal = w
	s.walBase = s.lastSnap
	s.stats.Compactions++
	s.stats.ReclaimedBytes += oldSize - int64(len(content))

	// Garbage-collect snapshots that predate the base: recovery can no
	// longer use them (the events to replay past them are gone). Failures
	// here are cosmetic; the next compaction retries.
	snaps, err := listSnapshots(s.fsys, s.cfg.Dir)
	if err != nil {
		return nil
	}
	for _, sf := range snaps {
		if sf.seq >= s.walBase {
			continue
		}
		p := filepath.Join(s.cfg.Dir, sf.name)
		if info, err := s.fsys.Stat(p); err == nil {
			if s.fsys.Remove(p) == nil {
				s.stats.ReclaimedBytes += info.Size()
			}
		}
	}
	return nil
}

// CompactOpLog rewrites a dynamic run's operation log in place, collapsing
// every clock-advance record into a single advance to the log's largest
// target, positioned after exactly the items that were admitted before it.
// Item records — the durable source of the item list, whose IDs are
// positional — are preserved bit-for-bit, so the rebuilt list, the final
// watermark, and MaxAdvance are unchanged; only redundant advance spam goes.
// The rewrite is atomic (temp + rename + dir-sync) and only runs on a clean,
// fully-synced log.
//
// Returns a fresh append writer positioned at the new tail and the bytes
// reclaimed. When nothing would shrink (fewer than two advances), it returns
// (nil, 0, nil) and the caller keeps its current writer.
func CompactOpLog(fsys vfs.FS, path, label string, syncEvery int) (*Writer, int64, error) {
	fsys = vfs.OrOS(fsys)
	logged, err := ReadOpLog(fsys, path, label)
	if err != nil {
		return nil, 0, err
	}
	if logged.Torn != nil {
		return nil, 0, logged.Torn // only compact logs with no torn tail
	}
	advances := 0
	itemsBeforeLast := 0
	items := 0
	for _, op := range logged.Ops {
		switch op.Kind {
		case OpItem:
			items++
		case OpAdvance:
			advances++
			itemsBeforeLast = items
		}
	}
	if advances <= 1 {
		return nil, 0, nil
	}
	content := appendHeader(nil, KindOpLog)
	content = appendRecord(content, encodeMeta(logged.Meta))
	var scratch []byte
	n := 0
	for _, op := range logged.Ops {
		if op.Kind != OpItem {
			continue
		}
		if n == itemsBeforeLast {
			scratch = AppendAdvanceOp(scratch[:0], logged.MaxAdvance)
			content = appendRecord(content, scratch)
		}
		scratch = AppendItemOp(scratch[:0], op.Arrival, op.Departure, op.Size)
		content = appendRecord(content, scratch)
		n++
	}
	if n == itemsBeforeLast { // the advance came after every item
		scratch = AppendAdvanceOp(scratch[:0], logged.MaxAdvance)
		content = appendRecord(content, scratch)
	}
	if int64(len(content)) >= logged.ValidSize {
		return nil, 0, nil
	}
	if err := writeFileAtomic(fsys, path, content); err != nil {
		return nil, 0, err
	}
	w, err := openAppend(fsys, path, int64(len(content)), syncEvery)
	if err != nil {
		return nil, 0, &CorruptionError{Run: label, Path: path, Offset: -1, Record: -1,
			Reason: "compaction swapped the op log but could not reopen it", Err: err}
	}
	return w, logged.ValidSize - int64(len(content)), nil
}
