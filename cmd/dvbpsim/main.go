// Command dvbpsim runs one MinUsageTime DVBP simulation and reports the
// packing cost, the Lemma 1 lower bounds and the offline bracket.
//
// Input is either a trace file (-trace, CSV or JSON as produced by
// dvbptrace) or a freshly generated uniform instance (-d/-n/-mu/-T/-B/-seed,
// the paper's Table 2 model).
//
// Examples:
//
//	dvbpsim -d 2 -n 1000 -mu 100 -policy MoveToFront
//	dvbpsim -trace trace.csv -policy ff -bins
//	dvbpsim -d 1 -n 200 -mu 10 -all
//	dvbpsim -policy ff -migrate stranded -migrate-period 10 -migrate-moves 8
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"dvbp/internal/check"
	"dvbp/internal/cli"
	"dvbp/internal/core"
	"dvbp/internal/exactopt"
	"dvbp/internal/faults"
	"dvbp/internal/item"
	"dvbp/internal/lowerbound"
	"dvbp/internal/metrics"
	"dvbp/internal/migrate"
	"dvbp/internal/offline"
	"dvbp/internal/persist"
	"dvbp/internal/report"
	"dvbp/internal/workload"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (.csv or .json); overrides the generator flags")
		d         = flag.Int("d", 2, "dimensions (generator)")
		n         = flag.Int("n", 1000, "items (generator)")
		mu        = flag.Int("mu", 10, "max item duration (generator)")
		horizon   = flag.Int("T", 1000, "span (generator)")
		binSize   = flag.Int("B", 100, "bin capacity granularity (generator)")
		seed      = flag.Int64("seed", 1, "generator / RandomFit seed")
		policy    = flag.String("policy", "MoveToFront", core.PolicyFlagUsage())
		all       = flag.Bool("all", false, "run all seven standard policies")
		bins      = flag.Bool("bins", false, "print per-bin usage records")
		bracket   = flag.Bool("bracket", true, "compute the offline OPT bracket (O(n^2); disable for huge traces)")
		exact     = flag.Bool("exact", false, "compute exact OPT (exponential; only for small peak concurrency)")
		checkFlag = flag.Bool("check", false, "re-validate every result from first principles (internal/check)")
		metricsF  = flag.Bool("metrics", false, "collect engine metrics per policy and dump JSON + Prometheus snapshots")
		list      = flag.Bool("list", false, "list policy names and exit")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the run (0 = none); on expiry the exit code is 2 and a checkpointed run stays resumable")
		ckptDir   = flag.String("checkpoint-dir", "", "persist the run (WAL + snapshots) into this directory; single policy only")
		ckptEvery = flag.Int64("checkpoint-every", 256, "events between automatic snapshots when -checkpoint-dir is set (0 = WAL only)")
		restoreF  = flag.Bool("restore", false, "resume the run persisted in -checkpoint-dir instead of starting fresh")
		compactF  = flag.Bool("compact", false, "compact the WAL after each automatic snapshot, bounding on-disk size by -checkpoint-every")
	)
	var spec faults.Spec
	spec.Register(flag.CommandLine, "")
	var mig migrate.Config
	mig.Register(flag.CommandLine, "")
	flag.Parse()

	plan, err := spec.Plan()
	if err != nil {
		fatal(err)
	}
	migOpt, err := mig.Option()
	if err != nil {
		fatal(err)
	}

	if *list {
		fmt.Println(strings.Join(core.PolicySpellings(), "\n"))
		return
	}

	if plan.Active() && *checkFlag {
		fatal(fmt.Errorf("-check validates the fault-free model; it cannot be combined with fault/admission flags"))
	}
	if mig.Enabled() && *checkFlag {
		fatal(fmt.Errorf("-check validates the irrevocable model; it cannot be combined with -migrate"))
	}
	if *ckptDir != "" && *all {
		fatal(fmt.Errorf("-checkpoint-dir persists a single run; it cannot be combined with -all"))
	}
	if *restoreF && *ckptDir == "" {
		fatal(fmt.Errorf("-restore needs the -checkpoint-dir of the interrupted run"))
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	l, err := loadInstance(*tracePath, *d, *n, *mu, *horizon, *binSize, *seed)
	if err != nil {
		fatal(err)
	}

	lb := lowerbound.Compute(l)
	fmt.Printf("instance: d=%d items=%d span=%.4g mu=%.4g\n", l.Dim, l.Len(), l.Span(), l.Mu())
	if plan.Active() {
		fmt.Printf("faults: %s\n", plan)
	}
	if mig.Enabled() {
		fmt.Printf("migration: %s\n", mig)
	}
	fmt.Printf("lower bounds on OPT: integral=%.4f utilization=%.4f span=%.4f\n",
		lb.Integral, lb.Utilization, lb.Span)
	var upCost float64
	if *bracket {
		up, err := offline.BestUpperEstimate(l)
		if err != nil {
			fatal(err)
		}
		upCost = up.Cost
		fmt.Printf("offline upper estimate: %.4f (%s)  =>  OPT in [%.4f, %.4f]\n",
			up.Cost, up.Algorithm, lb.Best(), up.Cost)
	}

	denom := lb.Best() // ratio denominator: exact OPT when available
	if *exact {
		if peak := exactopt.PeakActive(l); peak > exactopt.DefaultMaxActive {
			fatal(fmt.Errorf("exact OPT infeasible: peak concurrency %d exceeds %d", peak, exactopt.DefaultMaxActive))
		}
		opt, err := exactopt.Opt(l, exactopt.Options{})
		if err != nil {
			fatal(err)
		}
		denom = opt
		fmt.Printf("exact OPT: %.4f (ratios below are TRUE competitive ratios)\n", opt)
	}

	var policies []core.Policy
	if *all {
		policies = core.StandardPolicies(*seed)
	} else {
		p, err := core.NewPolicy(*policy, *seed)
		if err != nil {
			fatal(err)
		}
		policies = []core.Policy{p}
	}

	ratioHeader := "cost/LB"
	if *exact {
		ratioHeader = "cost/OPT"
	}
	headers := []string{"policy", "cost", ratioHeader, "bins", "peak bins"}
	if mig.Enabled() {
		headers = append(headers, "migr", "drained", "migr cost")
	}
	if plan.Active() {
		headers = append(headers, "crashes", "evict", "retry", "lost", "reject", "timeout")
	}
	faultStr := ""
	if plan.Active() {
		faultStr = plan.String()
	}
	t := &report.Table{Headers: headers}
	collectors := make(map[string]*metrics.Collector)
	for _, p := range policies {
		opts := append(plan.Options(), migOpt)
		if *metricsF {
			col := metrics.NewCollector()
			collectors[p.Name()] = col
			opts = append(opts, core.WithObserver(col))
		}
		rc := runConfig{dir: *ckptDir, every: *ckptEvery, compact: *compactF, restore: *restoreF,
			seed: *seed, faults: faultStr, migration: mig.String(), col: collectors[p.Name()]}
		res, err := runPolicy(ctx, l, p, opts, rc)
		if err != nil {
			fatal(err)
		}
		if *checkFlag {
			if err := check.Result(l, res); err != nil {
				fatal(fmt.Errorf("%s failed validation: %w", p.Name(), err))
			}
		}
		row := []string{res.Algorithm, fmt.Sprintf("%.4f", res.Cost), fmt.Sprintf("%.4f", res.Cost/denom),
			fmt.Sprintf("%d", res.BinsOpened), fmt.Sprintf("%d", res.MaxConcurrentBins)}
		if mig.Enabled() {
			row = append(row, fmt.Sprintf("%d", res.Migrations),
				fmt.Sprintf("%d", res.BinsDrained), fmt.Sprintf("%.4f", res.MigrationCost))
		}
		if plan.Active() {
			row = append(row, fmt.Sprintf("%d", res.Crashes), fmt.Sprintf("%d", res.Evictions),
				fmt.Sprintf("%d", res.Retries), fmt.Sprintf("%d", res.ItemsLost),
				fmt.Sprintf("%d", res.Rejected), fmt.Sprintf("%d", res.TimedOut))
		}
		t.AddRow(row...)
		if *bins {
			for _, b := range res.Bins {
				mark := ""
				if b.Crashed {
					mark = " CRASHED"
				}
				fmt.Printf("  %s bin %d: [%.4g, %.4g) usage=%.4g items=%d%s\n",
					p.Name(), b.BinID, b.OpenedAt, b.ClosedAt, b.Usage(), b.Packed, mark)
			}
		}
	}
	fmt.Print(t.Render())
	if *bracket && upCost > 0 && !*exact {
		fmt.Printf("note: cost/LB overstates the true competitive ratio by at most %.2fx (bracket looseness)\n",
			upCost/lb.Best())
	}
	if *metricsF {
		for _, p := range policies {
			label := ""
			if len(policies) > 1 {
				label = p.Name()
			}
			if err := report.WriteMetrics(os.Stdout, label, collectors[p.Name()].Snapshot()); err != nil {
				fatal(err)
			}
		}
	}
}

// runConfig shapes one policy's run: plain in-memory simulation, or a
// persisted (and possibly resumed) one.
type runConfig struct {
	dir       string
	every     int64
	compact   bool
	restore   bool
	seed      int64
	faults    string
	migration string
	col       *metrics.Collector
}

// runPolicy executes one policy over l, persisting and/or resuming through
// internal/persist when a checkpoint directory is configured. The context is
// checked between events, so an expired -timeout leaves the checkpoint
// directory in a resumable state.
func runPolicy(ctx context.Context, l *item.List, p core.Policy, opts []core.Option, rc runConfig) (*core.Result, error) {
	if rc.dir == "" {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		return core.Simulate(l, p, opts...)
	}
	pcfg := persist.Config{Dir: rc.dir, Every: rc.every, Compact: rc.compact}
	if rc.col != nil {
		pcfg.Aux = []persist.AuxCodec{rc.col.Registry()}
	}
	var s *persist.Session
	if rc.restore {
		// Recover rebuilds the engine (and policy) from the run's own
		// metadata; the -policy flag only matters for fresh runs.
		rec, err := persist.Recover(l, pcfg, opts...)
		if err != nil {
			return nil, err
		}
		for _, ce := range rec.Corruptions {
			fmt.Fprintln(os.Stderr, "dvbpsim: tolerated:", ce)
		}
		fmt.Fprintf(os.Stderr, "dvbpsim: resumed at event %d (snapshot %d + %d replayed)\n",
			rec.Session.Logged(), rec.SnapshotSeq, rec.Replayed)
		s = rec.Session
	} else {
		e, err := core.NewEngine(l, p, opts...)
		if err != nil {
			return nil, err
		}
		meta := persist.NewRunMeta(l, p.Name(), rc.seed, rc.faults)
		meta.Migration = rc.migration
		s, err = persist.Begin(e, meta, pcfg)
		if err != nil {
			e.Close()
			return nil, err
		}
	}
	for {
		if err := ctx.Err(); err != nil {
			s.Close()
			return nil, err
		}
		_, ok, err := s.Step()
		if err != nil {
			s.Close()
			return nil, err
		}
		if !ok {
			return s.Finish()
		}
	}
}

func loadInstance(path string, d, n, mu, horizon, binSize int, seed int64) (*item.List, error) {
	if path == "" {
		return workload.Uniform(workload.UniformConfig{D: d, N: n, Mu: mu, T: horizon, B: binSize}, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return workload.ReadJSON(f)
	}
	return workload.ReadCSV(f)
}

func fatal(err error) {
	cli.Fatal("dvbpsim", err)
}
