package faults

import (
	"math"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

func TestMTBFDeterministicAndStateless(t *testing.T) {
	m := MTBF{Mean: 10, Seed: 42}
	a1, ok1 := m.BinOpened(3, 5)
	a2, ok2 := m.BinOpened(3, 5)
	if !ok1 || !ok2 || a1 != a2 {
		t.Fatalf("same (seed, bin) must give identical crash times: %v vs %v", a1, a2)
	}
	// Call order must not matter (stateless): interleave other bins.
	m.BinOpened(0, 0)
	m.BinOpened(7, 1)
	a3, _ := m.BinOpened(3, 5)
	if a3 != a1 {
		t.Fatalf("draw for bin 3 changed after other calls: %v vs %v", a3, a1)
	}
	if b, _ := m.BinOpened(4, 5); b == a1 {
		t.Error("different bins should (generically) crash at different times")
	}
	if d, _ := (MTBF{Mean: 10, Seed: 43}).BinOpened(3, 5); d == a1 {
		t.Error("different seeds should (generically) differ")
	}
}

func TestMTBFRespectsFloorAndOffset(t *testing.T) {
	m := MTBF{Mean: 1e-12, Seed: 1}
	at, ok := m.BinOpened(0, 100)
	if !ok {
		t.Fatal("mean > 0 must schedule a crash")
	}
	if at < 100+DefaultMinTTF {
		t.Errorf("crash at %v violates the MinTTF floor", at)
	}
	if _, ok := (MTBF{Mean: 0}).BinOpened(0, 0); ok {
		t.Error("zero mean must disable crashes")
	}
}

func TestMTBFMeanIsPlausible(t *testing.T) {
	m := MTBF{Mean: 20, Seed: 7}
	sum := 0.0
	const n = 4000
	for i := 0; i < n; i++ {
		at, _ := m.BinOpened(i, 0)
		sum += at
	}
	if avg := sum / n; math.Abs(avg-20) > 2 {
		t.Errorf("empirical mean TTF %v too far from 20", avg)
	}
}

func TestTraceSchedules(t *testing.T) {
	tr, err := NewTrace([]TraceEvent{
		{BinID: 0, At: 5},
		{BinID: 2, At: 1.5, AfterOpen: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if at, ok := tr.BinOpened(0, 3); !ok || at != 5 {
		t.Errorf("absolute event: got %v,%v", at, ok)
	}
	if at, ok := tr.BinOpened(2, 10); !ok || at != 11.5 {
		t.Errorf("after-open event: got %v,%v", at, ok)
	}
	if _, ok := tr.BinOpened(1, 0); ok {
		t.Error("unscheduled bin must not crash")
	}
	if tr.Len() != 2 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestTraceRejectsBadEvents(t *testing.T) {
	for _, events := range [][]TraceEvent{
		{{BinID: -1, At: 1}},
		{{BinID: 0, At: math.NaN()}},
		{{BinID: 0, At: -2}},
		{{BinID: 1, At: 1}, {BinID: 1, At: 2}},
	} {
		if _, err := NewTrace(events); err == nil {
			t.Errorf("NewTrace(%v) should fail", events)
		}
	}
}

func TestRetryPolicies(t *testing.T) {
	if d := (Immediate{}).Delay(3); d != 0 {
		t.Errorf("Immediate.Delay = %v", d)
	}
	if d := (Fixed{Wait: 2.5}).Delay(7); d != 2.5 {
		t.Errorf("Fixed.Delay = %v", d)
	}
	b := Backoff{Base: 1, Cap: 10}
	for attempt, want := range map[int]float64{1: 1, 2: 2, 3: 4, 4: 8, 5: 10, 6: 10} {
		if d := b.Delay(attempt); d != want {
			t.Errorf("Backoff.Delay(%d) = %v, want %v", attempt, d, want)
		}
	}
	if d := (Backoff{Base: 1, Factor: 3}).Delay(3); d != 9 {
		t.Errorf("factor-3 Delay(3) = %v, want 9", d)
	}
	if d := b.Delay(0); d != 1 {
		t.Errorf("attempt < 1 should clamp to 1, got delay %v", d)
	}
}

func TestParseRetry(t *testing.T) {
	cases := map[string]string{
		"":                 "immediate",
		"immediate":        "immediate",
		"fixed:2":          "fixed(2)",
		"backoff:1":        "backoff(1,x2)",
		"backoff:1:30":     "backoff(1,x2,cap=30)",
		"backoff:0.5:30:3": "backoff(0.5,x3,cap=30)",
	}
	for in, want := range cases {
		rp, err := ParseRetry(in)
		if err != nil {
			t.Fatalf("ParseRetry(%q): %v", in, err)
		}
		if rp.Name() != want {
			t.Errorf("ParseRetry(%q).Name() = %q, want %q", in, rp.Name(), want)
		}
	}
	for _, bad := range []string{"nope", "fixed", "fixed:x", "fixed:-1", "backoff", "backoff:1:2:3:4", "immediate:1", "fixed:NaN"} {
		if _, err := ParseRetry(bad); err == nil {
			t.Errorf("ParseRetry(%q) should fail", bad)
		}
	}
}

func TestParseTrace(t *testing.T) {
	tr, err := ParseTrace("0@5, 2+1.5")
	if err != nil {
		t.Fatal(err)
	}
	if at, _ := tr.BinOpened(0, 0); at != 5 {
		t.Errorf("bin 0 crash = %v", at)
	}
	if at, _ := tr.BinOpened(2, 4); at != 5.5 {
		t.Errorf("bin 2 crash = %v", at)
	}
	for _, bad := range []string{"", "x@1", "0@", "0@-1", "0@1,0@2", "0"} {
		if _, err := ParseTrace(bad); err == nil {
			t.Errorf("ParseTrace(%q) should fail", bad)
		}
	}
}

func TestPlanOptionsAndString(t *testing.T) {
	if (Plan{}).Active() {
		t.Error("zero plan must be inactive")
	}
	if got := (Plan{}).String(); got != "none" {
		t.Errorf("zero plan String = %q", got)
	}
	p := Plan{Injector: MTBF{Mean: 5, Seed: 1}, Retry: Fixed{Wait: 1}, MaxServers: 3, Queue: true, QueueDeadline: 2}
	if !p.Active() {
		t.Error("plan with injector must be active")
	}
	if n := len(p.Options()); n != 3 {
		t.Errorf("Options() returned %d options, want 3", n)
	}
	if s := p.String(); s == "" || s == "none" {
		t.Errorf("String = %q", s)
	}
}

// TestPlanDrivesEngine end-to-end: a trace plan through core.Simulate.
func TestPlanDrivesEngine(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 10, vector.Of(0.5))
	tr, err := NewTrace([]TraceEvent{{BinID: 0, At: 4}})
	if err != nil {
		t.Fatal(err)
	}
	plan := Plan{Injector: tr, Retry: Immediate{}}
	res, err := core.Simulate(l, core.NewFirstFit(), plan.Options()...)
	if err != nil {
		t.Fatal(err)
	}
	if res.Crashes != 1 || res.Retries != 1 || res.Cost != 10 {
		t.Errorf("unexpected result: %s", res)
	}
}

// FuzzParse exercises the flag-syntax parsers for panics and false accepts.
func FuzzParse(f *testing.F) {
	f.Add("backoff:1:30:2", "0@5,2+1.5")
	f.Add("fixed:2", "1+0.5")
	f.Add("", "")
	f.Fuzz(func(t *testing.T, retry, trace string) {
		if rp, err := ParseRetry(retry); err == nil {
			d := rp.Delay(3)
			if math.IsNaN(d) || d < 0 {
				t.Fatalf("ParseRetry(%q) produced invalid delay %v", retry, d)
			}
		}
		if tr, err := ParseTrace(trace); err == nil {
			if at, ok := tr.BinOpened(0, 1); ok && (math.IsNaN(at) || at < 0) {
				t.Fatalf("ParseTrace(%q) produced invalid crash time %v", trace, at)
			}
		}
	})
}
