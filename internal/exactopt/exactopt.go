package exactopt

import (
	"errors"
	"fmt"
	"math"
	"sort"

	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// ErrTooLarge reports a segment whose active-item count exceeds the
// configured limit, making the exact DP infeasible.
var ErrTooLarge = errors.New("exactopt: too many concurrent items for exact OPT")

// DefaultMaxActive bounds the bitmask DP (3^16 ≈ 4·10⁷ submask steps).
const DefaultMaxActive = 16

// Options configures Opt.
type Options struct {
	// MaxActive overrides DefaultMaxActive (values > 24 are rejected
	// outright: 3^24 is never tractable).
	MaxActive int
}

func (o Options) maxActive() int {
	if o.MaxActive > 0 {
		return o.MaxActive
	}
	return DefaultMaxActive
}

// MinBins returns the minimum number of unit-capacity bins needed to pack
// the given sizes, exactly. It panics if len(sizes) > 24 (use Opt's guard
// for untrusted input). An empty input needs 0 bins.
func MinBins(sizes []vector.Vector) int {
	n := len(sizes)
	if n == 0 {
		return 0
	}
	if n > 24 {
		panic("exactopt: MinBins limited to 24 items")
	}
	full := (1 << n) - 1

	// feasible[mask]: the items of mask fit together in one bin. Computed
	// incrementally: sum[mask] = sum[mask^lowbit] + size[lowbit].
	d := sizes[0].Dim()
	sums := make([]vector.Vector, 1<<n)
	sums[0] = vector.New(d)
	feasible := make([]bool, 1<<n)
	feasible[0] = true
	for mask := 1; mask <= full; mask++ {
		low := mask & -mask
		idx := bitIndex(low)
		prev := mask ^ low
		s := sums[prev].Add(sizes[idx])
		sums[mask] = s
		// Loads only grow, so any superset of an infeasible set is
		// infeasible.
		feasible[mask] = feasible[prev] && s.LeqCapacity()
	}

	const inf = math.MaxInt32
	dp := make([]int32, 1<<n)
	for i := range dp {
		dp[i] = inf
	}
	dp[0] = 0
	for mask := 1; mask <= full; mask++ {
		low := mask & -mask
		// Every partition has some bin containing the lowest item of mask;
		// iterating only submasks that contain `low` avoids recounting
		// permutations of bins.
		for sub := mask; sub > 0; sub = (sub - 1) & mask {
			if sub&low == 0 {
				continue
			}
			if !feasible[sub] || dp[mask^sub] == inf {
				continue
			}
			if v := dp[mask^sub] + 1; v < dp[mask] {
				dp[mask] = v
			}
		}
	}
	return int(dp[full])
}

func bitIndex(power int) int {
	i := 0
	for power > 1 {
		power >>= 1
		i++
	}
	return i
}

// Opt computes the exact OPT(R) by sweeping the event timeline and solving
// each segment's vector bin packing exactly. It returns ErrTooLarge (wrapped
// with the offending time) when a segment has more than MaxActive items.
func Opt(l *item.List, opts Options) (float64, error) {
	if err := l.Validate(); err != nil {
		return 0, fmt.Errorf("exactopt: %w", err)
	}
	limit := opts.maxActive()
	if limit > 24 {
		return 0, fmt.Errorf("exactopt: MaxActive %d exceeds the hard cap of 24", limit)
	}

	type ev struct {
		t       float64
		idx     int
		arrival bool
	}
	events := make([]ev, 0, 2*l.Len())
	for i, it := range l.Items {
		events = append(events,
			ev{t: it.Arrival, idx: i, arrival: true},
			ev{t: it.Departure, idx: i, arrival: false},
		)
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return !events[i].arrival && events[j].arrival // departures first
	})

	active := make(map[int]bool)
	total := 0.0
	for i := 0; i < len(events); {
		t := events[i].t
		for i < len(events) && events[i].t == t {
			if events[i].arrival {
				active[events[i].idx] = true
			} else {
				delete(active, events[i].idx)
			}
			i++
		}
		if i == len(events) || len(active) == 0 {
			continue
		}
		segLen := events[i].t - t
		if segLen <= 0 {
			continue
		}
		if len(active) > limit {
			return 0, fmt.Errorf("%w: %d active at t=%g (limit %d)", ErrTooLarge, len(active), t, limit)
		}
		sizes := make([]vector.Vector, 0, len(active))
		idxs := make([]int, 0, len(active))
		for idx := range active {
			idxs = append(idxs, idx)
		}
		sort.Ints(idxs) // determinism of the DP input order
		for _, idx := range idxs {
			sizes = append(sizes, l.Items[idx].Size)
		}
		total += float64(MinBins(sizes)) * segLen
	}
	return total, nil
}

// PeakActive returns the maximum number of simultaneously active items —
// callers can check it against Options.MaxActive before paying for Opt.
func PeakActive(l *item.List) int {
	type ev struct {
		t       float64
		arrival bool
	}
	events := make([]ev, 0, 2*l.Len())
	for _, it := range l.Items {
		events = append(events, ev{it.Arrival, true}, ev{it.Departure, false})
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].t != events[j].t {
			return events[i].t < events[j].t
		}
		return !events[i].arrival && events[j].arrival
	})
	cur, peak := 0, 0
	for _, e := range events {
		if e.arrival {
			cur++
			if cur > peak {
				peak = cur
			}
		} else {
			cur--
		}
	}
	return peak
}
