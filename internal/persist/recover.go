package persist

import (
	"errors"
	"fmt"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vfs"
)

// Recovery reports how a run was brought back: which snapshot seeded the
// engine, how many WAL events were verified by replay, and every corruption
// that was detected and tolerated along the way.
type Recovery struct {
	// Session is the resumed session, positioned exactly where the durable
	// log ends; Step/Run continue the run, Finish seals it.
	Session *Session
	// Meta is the recovered run's identity.
	Meta RunMeta
	// SnapshotSeq is the event sequence of the snapshot the engine was
	// restored from (0 = no usable snapshot, replayed from scratch).
	SnapshotSeq int64
	// SnapshotPath is the file the engine was restored from ("" for scratch).
	SnapshotPath string
	// Replayed is the number of WAL events re-stepped and verified.
	Replayed int64
	// CompactBase is the event sequence the WAL was compacted to (0 when the
	// log was never compacted): events 1..CompactBase exist only inside a
	// snapshot, and the WAL's first event record claims seq CompactBase+1.
	CompactBase int64
	// SweptTemp counts orphaned atomic-write temp files (".tmp-" leftovers
	// from a crash mid-rename) deleted before recovery began.
	SweptTemp int
	// Corruptions lists every defect recovery tolerated: torn WAL tails,
	// out-of-sequence log records, and snapshots it had to skip. Recovery
	// only fails outright when nothing consistent remains.
	Corruptions []*CorruptionError
}

// Recover resumes the persisted run in cfg.Dir against the given instance.
// The opts must reproduce the original run's configuration (injector, retry,
// admission control, observers) — the engine is deterministic in them, and
// replay verification catches a mismatch as a divergence.
//
// Recovery: sweep temp-file orphans; read the WAL, honouring a compaction
// marker and truncating at the first torn or out-of-sequence record; restore
// the newest snapshot that decodes cleanly, matches the run, and fits between
// the compaction base and the durable log (older snapshots, then a fresh
// engine when the log was never compacted, are the fallbacks); re-step the
// engine through the logged suffix, checking every regenerated event against
// the log bit for bit; then reopen the WAL for appending, with any torn tail
// truncated away.
func Recover(l *item.List, cfg Config, opts ...core.Option) (*Recovery, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("persist: no checkpoint directory configured")
	}
	if err := checkAuxKeys(cfg.Aux); err != nil {
		return nil, err
	}
	fsys := vfs.OrOS(cfg.FS)
	rec := &Recovery{}
	// Every corruption detected below carries the run's identity, so
	// multi-tenant recovery logs name the damaged tenant, not just a path.
	brand := func(ce *CorruptionError) *CorruptionError {
		if ce.Run == "" {
			ce.Run = cfg.Label
		}
		return ce
	}

	// 0. Sweep orphaned atomic-write temp files: a crash between CreateTemp
	// and Rename leaves a ".tmp-" file that no future rename will claim.
	// They are garbage by construction — the atomic-write protocol only
	// renames a temp it just wrote — so deleting them is always safe.
	rec.SweptTemp = sweepTempFiles(fsys, cfg.Dir)

	// 1. The write-ahead log: meta record, an optional compaction marker,
	// then one record per event past the compaction base.
	walPath := filepath.Join(cfg.Dir, walFile)
	fd, err := ReadFile(fsys, walPath)
	if err != nil {
		var ce *CorruptionError
		if errors.As(err, &ce) {
			brand(ce)
		}
		return nil, fmt.Errorf("recovering %s: %w", cfg.Dir, err)
	}
	if fd.Kind != KindWAL {
		return nil, brand(&CorruptionError{Path: walPath, Offset: -1, Record: -1, Reason: fmt.Sprintf("expected a WAL file, found kind %d", fd.Kind)})
	}
	if fd.Torn != nil {
		rec.Corruptions = append(rec.Corruptions, brand(fd.Torn))
	}
	if len(fd.Records) == 0 {
		return nil, brand(&CorruptionError{Path: walPath, Offset: headerSize, Record: 0, Reason: "no run meta record survived"})
	}
	meta, err := decodeMeta(fd.Records[0])
	if err != nil {
		ce := err.(*CorruptionError)
		ce.Path, ce.Offset, ce.Record = walPath, fd.Offsets[0], 0
		return nil, brand(ce)
	}
	if err := meta.check(l); err != nil {
		if cfg.Label != "" {
			return nil, fmt.Errorf("run %q: %w", cfg.Label, err)
		}
		return nil, err
	}
	rec.Meta = meta

	// A compacted WAL declares its base in the record right after the meta.
	// The marker is load-bearing — without it the event numbering cannot be
	// verified — so an undecodable one is fatal, not a tolerated truncation.
	var base int64
	firstEvRec := 1 // file record index of the first event record
	evRecords, evOffsets := fd.Records[1:], fd.Offsets[1:]
	if len(evRecords) > 0 && isCompactMarker(evRecords[0]) {
		base, err = decodeCompactMarker(evRecords[0])
		if err != nil {
			ce := err.(*CorruptionError)
			ce.Path, ce.Offset, ce.Record = walPath, evOffsets[0], 1
			return nil, brand(ce)
		}
		evRecords, evOffsets = evRecords[1:], evOffsets[1:]
		firstEvRec = 2
	}
	rec.CompactBase = base

	// Decode the event suffix, truncating at the first undecodable or
	// out-of-sequence record (a valid checksum does not guarantee the run
	// that wrote it agreed with this one about numbering).
	events := make([]core.EventRecord, 0, len(evRecords))
	validSize := fd.ValidSize
	for i, payload := range evRecords {
		ev, err := DecodeEventRecord(payload)
		if err == nil && ev.Seq != base+int64(len(events))+1 {
			err = corrupt("event out of sequence: record claims seq %d, expected %d", ev.Seq, base+int64(len(events))+1)
		}
		if err != nil {
			ce := err.(*CorruptionError)
			ce.Path, ce.Offset, ce.Record = walPath, evOffsets[i], i+firstEvRec
			rec.Corruptions = append(rec.Corruptions, brand(ce))
			validSize = evOffsets[i]
			break
		}
		events = append(events, ev)
	}
	walEvents := base + int64(len(events))

	// 2. The newest usable snapshot. Damaged or over-eager candidates (a
	// snapshot ahead of the durable log after a tail truncation) are skipped,
	// not fatal — unless the WAL was compacted, in which case a snapshot at
	// or past the base is the only way back: the events below it are gone.
	engine, err := restoreNewest(fsys, l, meta, cfg, opts, base, walEvents, rec)
	if err != nil {
		return nil, err
	}

	// 3. Replay with verification: the deterministic engine must regenerate
	// the logged suffix exactly.
	for walEvents > engine.EventSeq() {
		want := events[engine.EventSeq()-base]
		got, ok, err := engine.Step()
		if err != nil {
			engine.Close()
			return nil, fmt.Errorf("persist: replay failed at event %d: %w", want.Seq, err)
		}
		if !ok {
			engine.Close()
			return nil, brand(&CorruptionError{Path: walPath, Offset: -1, Record: -1,
				Reason: fmt.Sprintf("log holds events up to %d but the run ends after %d — wrong instance or options", walEvents, engine.EventSeq())})
		}
		if got != want {
			engine.Close()
			return nil, brand(&CorruptionError{Path: walPath, Offset: -1, Record: -1,
				Reason: fmt.Sprintf("replay divergence at event %d: engine regenerated %+v, log holds %+v — corrupt log or mismatched run options", want.Seq, got, want)})
		}
		rec.Replayed++
	}

	// 4. Reopen the log for appending, truncated to its verified prefix.
	wal, err := openAppend(fsys, walPath, validSize, cfg.SyncEvery)
	if err != nil {
		engine.Close()
		return nil, err
	}
	rec.Session = &Session{cfg: cfg, fsys: fsys, meta: meta, engine: engine, wal: wal,
		logged: walEvents, walBase: base, lastSnap: rec.SnapshotSeq}
	return rec, nil
}

// sweepTempFiles deletes atomic-write leftovers (names containing ".tmp-")
// from dir, returning how many went. Errors are deliberately ignored: a
// missing directory just means there is nothing to sweep, and a temp file
// that will not delete is rediscovered next recovery.
func sweepTempFiles(fsys vfs.FS, dir string) int {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, e := range entries {
		if e.IsDir() || !strings.Contains(e.Name(), ".tmp-") {
			continue
		}
		if fsys.Remove(filepath.Join(dir, e.Name())) == nil {
			n++
		}
	}
	return n
}

// snapFile is one discovered snapshot file.
type snapFile struct {
	name string
	seq  int64
}

// listSnapshots finds snapshot files in dir, ascending by event sequence.
func listSnapshots(fsys vfs.FS, dir string) ([]snapFile, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, ioErr("readdir", dir, err)
	}
	var out []snapFile
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, snapPrefix) || !strings.HasSuffix(name, snapSuffix) {
			continue
		}
		seq, err := strconv.ParseInt(strings.TrimSuffix(strings.TrimPrefix(name, snapPrefix), snapSuffix), 10, 64)
		if err != nil || seq < 0 {
			continue // foreign file that happens to match the shape
		}
		out = append(out, snapFile{name: name, seq: seq})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].seq < out[j].seq })
	return out, nil
}

// restoreNewest restores the engine from the newest usable snapshot between
// base and walEvents, falling back through older snapshots and — only when
// the WAL was never compacted — to a fresh engine. Skipped snapshots are
// recorded in rec.Corruptions.
func restoreNewest(fsys vfs.FS, l *item.List, meta RunMeta, cfg Config, opts []core.Option, base, walEvents int64, rec *Recovery) (*core.Engine, error) {
	snaps, err := listSnapshots(fsys, cfg.Dir)
	if err != nil {
		return nil, err
	}
	for i := len(snaps) - 1; i >= 0; i-- {
		sf := snaps[i]
		path := filepath.Join(cfg.Dir, sf.name)
		skip := func(why string, cause error) {
			ce := &CorruptionError{Run: cfg.Label, Path: path, Offset: -1, Record: -1, Reason: why, Err: cause}
			rec.Corruptions = append(rec.Corruptions, ce)
		}
		if sf.seq > walEvents {
			skip(fmt.Sprintf("snapshot at event %d is ahead of the %d-event durable log", sf.seq, walEvents), nil)
			continue
		}
		if sf.seq < base {
			// The events between this snapshot and the base were compacted
			// away; restoring it would leave an unreplayable gap.
			skip(fmt.Sprintf("snapshot at event %d predates the compacted log base %d", sf.seq, base), nil)
			continue
		}
		engine, err := restoreSnapshotFile(fsys, path, l, meta, cfg, opts)
		if err != nil {
			skip("unusable snapshot", err)
			continue
		}
		if engine.EventSeq() != sf.seq {
			engine.Close()
			skip(fmt.Sprintf("snapshot content is at event %d but file name claims %d", engine.EventSeq(), sf.seq), nil)
			continue
		}
		rec.SnapshotSeq = sf.seq
		rec.SnapshotPath = path
		return engine, nil
	}
	if base > 0 {
		// Compaction only ever truncates below a durable snapshot and prunes
		// strictly below the base, so losing every snapshot >= base means the
		// directory was damaged beyond what the log can reconstruct.
		return nil, &CorruptionError{Run: cfg.Label, Path: cfg.Dir, Offset: -1, Record: -1,
			Reason: fmt.Sprintf("WAL is compacted to event %d but no usable snapshot at or past it remains", base)}
	}
	// From scratch: a fresh engine replays the whole log.
	p, err := core.NewPolicy(meta.Policy, meta.Seed)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	engine, err := core.NewEngine(l, p, opts...)
	if err != nil {
		return nil, err
	}
	return engine, nil
}

// restoreSnapshotFile loads one snapshot file into a restored engine and
// applies its aux blobs.
func restoreSnapshotFile(fsys vfs.FS, path string, l *item.List, meta RunMeta, cfg Config, opts []core.Option) (*core.Engine, error) {
	fd, err := ReadFile(fsys, path)
	if err != nil {
		return nil, err
	}
	if fd.Kind != KindSnapshot {
		return nil, corrupt("expected a snapshot file, found kind %d", fd.Kind)
	}
	if fd.Torn != nil {
		// Unlike the WAL, a snapshot is all-or-nothing: a torn tail may have
		// taken aux records with it, and partial aux state breaks the
		// checkpoint-equals-replay contract.
		return nil, fd.Torn
	}
	if len(fd.Records) < 2 {
		return nil, corrupt("snapshot file has %d records, want meta + snapshot", len(fd.Records))
	}
	fileMeta, err := decodeMeta(fd.Records[0])
	if err != nil {
		return nil, err
	}
	if !fileMeta.equal(meta) {
		return nil, corrupt("snapshot belongs to a different run (meta %+v, want %+v)", fileMeta, meta)
	}
	snap, err := DecodeSnapshot(fd.Records[1])
	if err != nil {
		return nil, err
	}
	p, err := core.NewPolicy(meta.Policy, meta.Seed)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	engine, err := core.RestoreEngine(l, p, snap, opts...)
	if err != nil {
		return nil, err
	}
	byKey := make(map[string][]byte)
	for _, payload := range fd.Records[2:] {
		key, blob, err := decodeAux(payload)
		if err != nil {
			engine.Close()
			return nil, err
		}
		if _, dup := byKey[key]; dup {
			engine.Close()
			return nil, corrupt("duplicate aux record %q", key)
		}
		byKey[key] = blob
	}
	for _, aux := range cfg.Aux {
		blob, ok := byKey[aux.AuxKey()]
		if !ok {
			engine.Close()
			return nil, corrupt("snapshot carries no aux record %q", aux.AuxKey())
		}
		if err := aux.UnmarshalAux(blob); err != nil {
			engine.Close()
			return nil, &CorruptionError{Path: path, Offset: -1, Record: -1, Reason: fmt.Sprintf("aux %q rejected its blob", aux.AuxKey()), Err: err}
		}
	}
	return engine, nil
}
