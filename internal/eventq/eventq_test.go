package eventq

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	var q Queue[string]
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek on empty should report !ok")
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop on empty should report !ok")
	}
}

func TestOrderingByTime(t *testing.T) {
	var q Queue[int]
	q.PushAt(3, 0, 30)
	q.PushAt(1, 1, 10)
	q.PushAt(2, 2, 20)
	want := []int{10, 20, 30}
	for i, w := range want {
		e, ok := q.Pop()
		if !ok || e.Payload != w {
			t.Fatalf("pop %d = %v (ok=%v), want %d", i, e.Payload, ok, w)
		}
	}
}

func TestTieBreakBySeq(t *testing.T) {
	var q Queue[int]
	q.PushAt(1, 5, 50)
	q.PushAt(1, 2, 20)
	q.PushAt(1, 9, 90)
	want := []int{20, 50, 90}
	for _, w := range want {
		e, _ := q.Pop()
		if e.Payload != w {
			t.Fatalf("tie-break order wrong: got %d, want %d", e.Payload, w)
		}
	}
}

func TestPeekDoesNotRemove(t *testing.T) {
	var q Queue[int]
	q.PushAt(1, 0, 1)
	if e, ok := q.Peek(); !ok || e.Payload != 1 {
		t.Fatal("Peek wrong")
	}
	if q.Len() != 1 {
		t.Fatal("Peek removed the event")
	}
}

func TestPopUntil(t *testing.T) {
	var q Queue[int]
	for i := 1; i <= 5; i++ {
		q.PushAt(float64(i), int64(i), i)
	}
	got := q.PopUntil(3)
	if len(got) != 3 {
		t.Fatalf("PopUntil(3) returned %d events", len(got))
	}
	for i, e := range got {
		if e.Payload != i+1 {
			t.Errorf("event %d payload = %d", i, e.Payload)
		}
	}
	if q.Len() != 2 {
		t.Errorf("remaining = %d, want 2", q.Len())
	}
	if more := q.PopUntil(0); len(more) != 0 {
		t.Errorf("PopUntil(0) = %d events, want 0", len(more))
	}
}

// Property: popping everything yields events sorted by (Time, Seq).
func TestHeapProperty(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	f := func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		var q Queue[int]
		type key struct {
			t float64
			s int64
		}
		keys := make([]key, n)
		for i := 0; i < n; i++ {
			k := key{t: float64(r.Intn(10)), s: int64(r.Intn(1000))}
			keys[i] = k
			q.PushAt(k.t, k.s, i)
		}
		sort.Slice(keys, func(i, j int) bool {
			if keys[i].t != keys[j].t {
				return keys[i].t < keys[j].t
			}
			return keys[i].s < keys[j].s
		})
		for i := 0; i < n; i++ {
			e, ok := q.Pop()
			if !ok {
				return false
			}
			if e.Time != keys[i].t || e.Seq != keys[i].s {
				return false
			}
		}
		_, ok := q.Pop()
		return !ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPushPop(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	times := make([]float64, 1024)
	for i := range times {
		times[i] = r.Float64() * 1000
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var q Queue[int]
		for j, tt := range times {
			q.PushAt(tt, int64(j), j)
		}
		for q.Len() > 0 {
			q.Pop()
		}
	}
}

// TestSteadyStateAllocs pins the queue's engine-facing contract: once the
// backing slice has grown, Push and Pop are allocation-free. The previous
// container/heap implementation boxed every event through `any`, costing one
// allocation per Push and per Pop on the simulation hot path.
func TestSteadyStateAllocs(t *testing.T) {
	var q Queue[int]
	for i := 0; i < 64; i++ {
		q.PushAt(float64(i), int64(i), i) // grow the backing slice
	}
	allocs := testing.AllocsPerRun(200, func() {
		q.PushAt(3.5, 999, 42)
		q.Pop()
	})
	if allocs != 0 {
		t.Errorf("steady-state Push+Pop allocates %v per cycle, want 0", allocs)
	}
}
