package faults

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"dvbp/internal/core"
)

// Immediate re-dispatches evicted items at the crash instant.
type Immediate struct{}

// Name implements core.RetryPolicy.
func (Immediate) Name() string { return "immediate" }

// Delay implements core.RetryPolicy.
func (Immediate) Delay(int) float64 { return 0 }

// Fixed re-dispatches evicted items a constant delay after every eviction.
type Fixed struct {
	// Wait is the re-dispatch delay in simulated time units.
	Wait float64
}

// Name implements core.RetryPolicy.
func (f Fixed) Name() string { return fmt.Sprintf("fixed(%g)", f.Wait) }

// Delay implements core.RetryPolicy.
func (f Fixed) Delay(int) float64 { return f.Wait }

// Backoff re-dispatches with capped exponential delays: the k-th eviction of
// an item waits min(Cap, Base·Factor^(k-1)).
type Backoff struct {
	// Base is the delay after the first eviction. Must be > 0 for the policy
	// to back off at all.
	Base float64
	// Factor is the per-attempt multiplier; values <= 0 default to 2.
	Factor float64
	// Cap bounds the delay; 0 or negative means uncapped.
	Cap float64
}

// Name implements core.RetryPolicy.
func (b Backoff) Name() string {
	f := b.Factor
	if f <= 0 {
		f = 2
	}
	if b.Cap > 0 {
		return fmt.Sprintf("backoff(%g,x%g,cap=%g)", b.Base, f, b.Cap)
	}
	return fmt.Sprintf("backoff(%g,x%g)", b.Base, f)
}

// Delay implements core.RetryPolicy.
func (b Backoff) Delay(attempt int) float64 {
	if attempt < 1 {
		attempt = 1
	}
	f := b.Factor
	if f <= 0 {
		f = 2
	}
	d := b.Base * math.Pow(f, float64(attempt-1))
	if b.Cap > 0 && d > b.Cap {
		d = b.Cap
	}
	return d
}

// ParseRetry parses the shared command-line retry syntax:
//
//	immediate
//	fixed:WAIT
//	backoff:BASE[:CAP[:FACTOR]]
//
// An empty string parses to Immediate.
func ParseRetry(s string) (core.RetryPolicy, error) {
	parts := strings.Split(strings.TrimSpace(s), ":")
	switch parts[0] {
	case "", "immediate":
		if len(parts) > 1 {
			return nil, fmt.Errorf("faults: retry %q takes no arguments", parts[0])
		}
		return Immediate{}, nil
	case "fixed":
		if len(parts) != 2 {
			return nil, fmt.Errorf("faults: retry syntax is fixed:WAIT, got %q", s)
		}
		w, err := parseNonNegative(parts[1])
		if err != nil {
			return nil, fmt.Errorf("faults: fixed retry: %w", err)
		}
		return Fixed{Wait: w}, nil
	case "backoff":
		if len(parts) < 2 || len(parts) > 4 {
			return nil, fmt.Errorf("faults: retry syntax is backoff:BASE[:CAP[:FACTOR]], got %q", s)
		}
		b := Backoff{}
		var err error
		if b.Base, err = parseNonNegative(parts[1]); err != nil {
			return nil, fmt.Errorf("faults: backoff base: %w", err)
		}
		if len(parts) > 2 {
			if b.Cap, err = parseNonNegative(parts[2]); err != nil {
				return nil, fmt.Errorf("faults: backoff cap: %w", err)
			}
		}
		if len(parts) > 3 {
			if b.Factor, err = parseNonNegative(parts[3]); err != nil {
				return nil, fmt.Errorf("faults: backoff factor: %w", err)
			}
		}
		return b, nil
	}
	return nil, fmt.Errorf("faults: unknown retry policy %q (want immediate, fixed:WAIT or backoff:BASE[:CAP[:FACTOR]])", parts[0])
}

func parseNonNegative(s string) (float64, error) {
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
		return 0, fmt.Errorf("value %q must be finite and non-negative", s)
	}
	return v, nil
}

// ParseTrace parses a comma-separated crash schedule. Each element is
// BIN@TIME (absolute crash time) or BIN+OFFSET (crash OFFSET time units
// after the bin opens), e.g. "0@5,2+1.5".
func ParseTrace(s string) (*Trace, error) {
	var events []TraceEvent
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		sep, after := "@", false
		if !strings.Contains(part, "@") {
			sep, after = "+", true
		}
		fields := strings.SplitN(part, sep, 2)
		if len(fields) != 2 {
			return nil, fmt.Errorf("faults: trace element %q: want BIN@TIME or BIN+OFFSET", part)
		}
		bin, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("faults: trace element %q: bad bin ID: %w", part, err)
		}
		at, err := parseNonNegative(fields[1])
		if err != nil {
			return nil, fmt.Errorf("faults: trace element %q: bad time: %w", part, err)
		}
		events = append(events, TraceEvent{BinID: bin, At: at, AfterOpen: after})
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("faults: empty trace %q", s)
	}
	return NewTrace(events)
}
