package persist

import (
	"encoding/json"
	"fmt"
	"hash/crc64"
	"math"

	"dvbp/internal/item"
)

// RunMeta identifies the run a persisted file belongs to. It is the first
// record of every WAL and snapshot file; recovery refuses to combine files
// whose metas disagree, and refuses to restore against an instance whose
// shape or content hash does not match.
type RunMeta struct {
	// Policy is the registry name of the packing policy.
	Policy string `json:"policy"`
	// Seed is the seed the run was started with (RandomFit construction; the
	// snapshot's policy state supersedes it on restore).
	Seed int64 `json:"seed"`
	// Dim and Items are the instance shape.
	Dim   int `json:"dim"`
	Items int `json:"items"`
	// WorkloadHash is HashWorkload of the instance, hex-encoded.
	WorkloadHash string `json:"workload_hash"`
	// FaultPlan is the fault configuration's display string ("" when the run
	// is fault-free). Informational: options are re-supplied on recovery.
	FaultPlan string `json:"fault_plan,omitempty"`
	// Migration is the migration configuration's display string ("" when
	// placements are irrevocable, the paper's model). Informational, like
	// FaultPlan: the WithMigration option is re-supplied on recovery, and
	// replay verification catches a mismatched planner immediately.
	Migration string `json:"migration,omitempty"`
	// Dynamic marks a dynamic-arrival run (core.WithDynamicArrivals): the
	// item list grows while the run is live, so Items and WorkloadHash cannot
	// be pinned up front. Content integrity comes from the caller's op log
	// (each op record is CRC-guarded) plus replay verification, which
	// compares every regenerated event to the WAL bit for bit.
	Dynamic bool `json:"dynamic,omitempty"`
}

// NewRunMeta builds the metadata for a run over l.
func NewRunMeta(l *item.List, policy string, seed int64, faultPlan string) RunMeta {
	return RunMeta{
		Policy:       policy,
		Seed:         seed,
		Dim:          l.Dim,
		Items:        l.Len(),
		WorkloadHash: fmt.Sprintf("%016x", HashWorkload(l)),
		FaultPlan:    faultPlan,
	}
}

// dynamicHash is the WorkloadHash sentinel of dynamic runs, whose workload
// is not known when the run starts.
const dynamicHash = "dynamic"

// NewDynamicRunMeta builds the metadata for a dynamic-arrival run: the item
// list starts empty and grows with the op log, so only the dimension (and the
// policy identity) is pinned.
func NewDynamicRunMeta(dim int, policy string, seed int64, faultPlan string) RunMeta {
	return RunMeta{
		Policy:       policy,
		Seed:         seed,
		Dim:          dim,
		WorkloadHash: dynamicHash,
		FaultPlan:    faultPlan,
		Dynamic:      true,
	}
}

// ecma is the CRC-64/ECMA table used for workload fingerprints.
var ecma = crc64.MakeTable(crc64.ECMA)

// HashWorkload fingerprints an instance: dimension, length, and every item's
// ID, interval, and size bits, in list order. Two lists hash equal iff a
// persisted run of one can be recovered against the other.
func HashWorkload(l *item.List) uint64 {
	buf := make([]byte, 0, 64)
	put := func(v uint64) {
		buf = append(buf, byte(v), byte(v>>8), byte(v>>16), byte(v>>24), byte(v>>32), byte(v>>40), byte(v>>48), byte(v>>56))
	}
	put(uint64(l.Dim))
	put(uint64(l.Len()))
	h := crc64.Update(0, ecma, buf)
	for _, it := range l.Items {
		buf = buf[:0]
		put(uint64(it.ID))
		put(uint64(it.SeqNo))
		put(math.Float64bits(it.Arrival))
		put(math.Float64bits(it.Departure))
		for _, s := range it.Size {
			put(math.Float64bits(s))
		}
		h = crc64.Update(h, ecma, buf)
	}
	return h
}

// encodeMeta serialises the meta record (JSON: small, versioned by field
// names, and safe to decode from arbitrary bytes).
func encodeMeta(m RunMeta) []byte {
	b, err := json.Marshal(m)
	if err != nil {
		// RunMeta is plain data; this cannot happen.
		panic("persist: " + err.Error())
	}
	return b
}

// decodeMeta parses a meta record.
func decodeMeta(payload []byte) (RunMeta, error) {
	var m RunMeta
	if err := json.Unmarshal(payload, &m); err != nil {
		return m, &CorruptionError{Offset: -1, Record: -1, Reason: "undecodable run meta", Err: err}
	}
	return m, nil
}

// check verifies that m describes a run over l. A mismatch is a user error
// (wrong directory or wrong instance), reported plainly rather than as
// corruption.
func (m RunMeta) check(l *item.List) error {
	if m.Dynamic {
		// The list is rebuilt from the op log and may cover any prefix
		// extension of the logged run; only the dimension is checkable here.
		// Replay verification vouches for the content.
		if m.WorkloadHash != dynamicHash {
			return fmt.Errorf("persist: dynamic run carries workload hash %q, want %q", m.WorkloadHash, dynamicHash)
		}
		if m.Dim != l.Dim {
			return fmt.Errorf("persist: run is over a d=%d instance, got d=%d", m.Dim, l.Dim)
		}
		return nil
	}
	if m.Dim != l.Dim || m.Items != l.Len() {
		return fmt.Errorf("persist: run is over a d=%d n=%d instance, got d=%d n=%d", m.Dim, m.Items, l.Dim, l.Len())
	}
	if want := fmt.Sprintf("%016x", HashWorkload(l)); m.WorkloadHash != want {
		return fmt.Errorf("persist: workload hash mismatch: run recorded %s, supplied instance hashes to %s", m.WorkloadHash, want)
	}
	return nil
}

// equal reports whether two metas describe the same run.
func (m RunMeta) equal(o RunMeta) bool { return m == o }
