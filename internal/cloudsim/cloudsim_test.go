package cloudsim

import (
	"math"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/vector"
)

func v(xs ...float64) vector.Vector { return vector.Of(xs...) }

func baseCfg() Config {
	return Config{
		Capacity: v(64, 256), // 64 vCPU, 256 GiB
		Policy:   core.NewFirstFit(),
		Billing:  Billing{PricePerUnit: 1},
	}
}

func TestBilling(t *testing.T) {
	exact := Billing{Quantum: 0, PricePerUnit: 2}
	if got := exact.Bill(3.5); got != 7 {
		t.Errorf("exact Bill = %v, want 7", got)
	}
	hourly := Billing{Quantum: 1, PricePerUnit: 2}
	if got := hourly.Bill(3.5); got != 8 {
		t.Errorf("hourly Bill = %v, want 8 (4 started hours)", got)
	}
	if got := hourly.Bill(3.0); got != 6 {
		t.Errorf("hourly Bill of exact multiple = %v, want 6", got)
	}
	if got := hourly.Bill(0); got != 0 {
		t.Errorf("Bill(0) = %v", got)
	}
}

func TestRunSingleServer(t *testing.T) {
	reqs := []Request{
		{ID: 1, Arrive: 0, Duration: 4, Demand: v(32, 128)},
		{ID: 2, Arrive: 1, Duration: 2, Demand: v(32, 128)},
	}
	rep, err := Run(baseCfg(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServersRented != 1 {
		t.Errorf("ServersRented = %d, want 1", rep.ServersRented)
	}
	if math.Abs(rep.UsageTime-4) > 1e-9 {
		t.Errorf("UsageTime = %v, want 4", rep.UsageTime)
	}
	if rep.PlacementOf[1] != rep.PlacementOf[2] {
		t.Error("both requests should share the server")
	}
}

func TestRunCapacityConflict(t *testing.T) {
	reqs := []Request{
		{ID: 1, Arrive: 0, Duration: 4, Demand: v(40, 10)},
		{ID: 2, Arrive: 0, Duration: 4, Demand: v(40, 10)}, // CPU conflict
	}
	rep, err := Run(baseCfg(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServersRented != 2 {
		t.Errorf("ServersRented = %d, want 2", rep.ServersRented)
	}
	if rep.PeakServers != 2 {
		t.Errorf("PeakServers = %d, want 2", rep.PeakServers)
	}
}

func TestRunHourlyBillingRoundsUp(t *testing.T) {
	cfg := baseCfg()
	cfg.Billing = Billing{Quantum: 1, PricePerUnit: 10}
	reqs := []Request{{ID: 1, Arrive: 0, Duration: 2.25, Demand: v(8, 8)}}
	rep, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.UsageTime-2.25) > 1e-9 {
		t.Errorf("UsageTime = %v", rep.UsageTime)
	}
	if math.Abs(rep.BilledCost-30) > 1e-9 {
		t.Errorf("BilledCost = %v, want 30 (3 started hours * 10)", rep.BilledCost)
	}
}

func TestRunValidation(t *testing.T) {
	ok := []Request{{ID: 1, Arrive: 0, Duration: 1, Demand: v(1, 1)}}
	cases := []struct {
		name string
		cfg  Config
		reqs []Request
	}{
		{"nil policy", Config{Capacity: v(1, 1), Billing: Billing{}}, ok},
		{"empty capacity", Config{Capacity: v(), Policy: core.NewFirstFit()}, ok},
		{"zero capacity comp", Config{Capacity: v(1, 0), Policy: core.NewFirstFit()}, ok},
		{"negative price", Config{Capacity: v(1, 1), Policy: core.NewFirstFit(), Billing: Billing{PricePerUnit: -1}}, ok},
		{"no requests", baseCfg(), nil},
		{"dup ids", baseCfg(), []Request{
			{ID: 1, Arrive: 0, Duration: 1, Demand: v(1, 1)},
			{ID: 1, Arrive: 0, Duration: 1, Demand: v(1, 1)},
		}},
		{"wrong dim", baseCfg(), []Request{{ID: 1, Arrive: 0, Duration: 1, Demand: v(1)}}},
		{"zero duration", baseCfg(), []Request{{ID: 1, Arrive: 0, Duration: 0, Demand: v(1, 1)}}},
		{"negative demand", baseCfg(), []Request{{ID: 1, Arrive: 0, Duration: 1, Demand: v(-1, 1)}}},
		{"over capacity", baseCfg(), []Request{{ID: 1, Arrive: 0, Duration: 1, Demand: v(65, 1)}}},
	}
	for _, c := range cases {
		if _, err := Run(c.cfg, c.reqs); err == nil {
			t.Errorf("%s: want error", c.name)
		}
	}
}

func TestRunNormalisesHeterogeneousDimensions(t *testing.T) {
	// 32/64 vCPU = 0.5 normalised; 192/256 GiB = 0.75. Two such requests
	// conflict in memory (1.5) but not CPU (1.0 exactly fits).
	reqs := []Request{
		{ID: 1, Arrive: 0, Duration: 1, Demand: v(32, 192)},
		{ID: 2, Arrive: 0, Duration: 1, Demand: v(32, 192)},
	}
	rep, err := Run(baseCfg(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServersRented != 2 {
		t.Errorf("ServersRented = %d, want 2 (memory conflict)", rep.ServersRented)
	}
}

func TestRunOutOfOrderArrivals(t *testing.T) {
	reqs := []Request{
		{ID: 2, Arrive: 5, Duration: 1, Demand: v(8, 8)},
		{ID: 1, Arrive: 0, Duration: 1, Demand: v(8, 8)},
	}
	rep, err := Run(baseCfg(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ServersRented != 2 {
		t.Errorf("ServersRented = %d, want 2 (disjoint sessions)", rep.ServersRented)
	}
	if math.Abs(rep.UsageTime-2) > 1e-9 {
		t.Errorf("UsageTime = %v, want 2", rep.UsageTime)
	}
}

func TestServerUsageAccounting(t *testing.T) {
	cfg := baseCfg()
	cfg.Billing = Billing{Quantum: 1, PricePerUnit: 3}
	reqs := []Request{
		{ID: 1, Arrive: 0, Duration: 1.5, Demand: v(60, 10)},
		{ID: 2, Arrive: 0.5, Duration: 2, Demand: v(60, 10)},
	}
	rep, err := Run(cfg, reqs)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Servers) != 2 {
		t.Fatalf("Servers = %d", len(rep.Servers))
	}
	var total float64
	for _, s := range rep.Servers {
		if s.Usage <= 0 || s.Sessions != 1 {
			t.Errorf("server %d: usage %v sessions %d", s.ServerID, s.Usage, s.Sessions)
		}
		total += s.Billed
	}
	if math.Abs(total-rep.BilledCost) > 1e-9 {
		t.Errorf("sum billed %v != report %v", total, rep.BilledCost)
	}
	// Server 0: [0,1.5) -> 2 quanta * 3 = 6. Server 1: [0.5,2.5) -> 2 quanta * 3 = 6.
	if math.Abs(rep.BilledCost-12) > 1e-9 {
		t.Errorf("BilledCost = %v, want 12", rep.BilledCost)
	}
}

func TestCompare(t *testing.T) {
	reqs := []Request{
		{ID: 1, Arrive: 0, Duration: 10, Demand: v(40, 40)},
		{ID: 2, Arrive: 1, Duration: 10, Demand: v(40, 40)},
		{ID: 3, Arrive: 2, Duration: 1, Demand: v(10, 10)},
	}
	reports, err := Compare(baseCfg(), reqs, core.StandardPolicies(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 7 {
		t.Fatalf("reports = %d", len(reports))
	}
	for _, r := range reports {
		if r.UsageTime <= 0 || r.ServersRented < 2 {
			t.Errorf("%s: implausible report %+v", r.Policy, r)
		}
	}
}

func TestTimeline(t *testing.T) {
	reqs := []Request{
		{ID: 1, Arrive: 0, Duration: 4, Demand: v(40, 10)},
		{ID: 2, Arrive: 1, Duration: 1, Demand: v(40, 10)}, // conflicts: own server [1,2)
	}
	rep, err := Run(baseCfg(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	tl := rep.Timeline()
	want := []TimelinePoint{{0, 1}, {1, 2}, {2, 1}, {4, 0}}
	if len(tl) != len(want) {
		t.Fatalf("Timeline = %v, want %v", tl, want)
	}
	for i := range want {
		if tl[i] != want[i] {
			t.Errorf("Timeline[%d] = %v, want %v", i, tl[i], want[i])
		}
	}
	// Mean: (1*1 + 2*1 + 1*2) / 4 = 1.25.
	if got := rep.MeanActiveServers(); math.Abs(got-1.25) > 1e-9 {
		t.Errorf("MeanActiveServers = %v, want 1.25", got)
	}
}

func TestTimelineEndsAtZero(t *testing.T) {
	reqs := []Request{
		{ID: 1, Arrive: 0, Duration: 2, Demand: v(10, 10)},
		{ID: 2, Arrive: 5, Duration: 2, Demand: v(10, 10)},
	}
	rep, err := Run(baseCfg(), reqs)
	if err != nil {
		t.Fatal(err)
	}
	tl := rep.Timeline()
	if tl[len(tl)-1].Servers != 0 {
		t.Errorf("timeline must end at zero: %v", tl)
	}
	// Peak must match the report.
	peak := 0
	for _, p := range tl {
		if p.Servers > peak {
			peak = p.Servers
		}
	}
	if peak != rep.PeakServers {
		t.Errorf("timeline peak %d != report peak %d", peak, rep.PeakServers)
	}
}

func TestMeanActiveServersEmptyish(t *testing.T) {
	var r Report
	if r.MeanActiveServers() != 0 {
		t.Error("empty report should have zero mean")
	}
}
