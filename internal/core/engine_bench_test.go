package core

import (
	"fmt"
	"testing"

	"dvbp/internal/item"
	"dvbp/internal/vector"
	"dvbp/internal/workload"
)

// churnInstance builds the bin-churn worst case: n full-bin items arriving
// together, so n bins are simultaneously open, then departing in reverse
// opening order, so every close used to scan the whole open list. Before
// closeBinAt tracked bin indices, Simulate was Θ(n²) on this family; it is
// now linear in the number of closings, which doubling n in the benchmark
// makes visible (quadratic close cost would quadruple ns/op per doubling).
func churnInstance(n int) *item.List {
	l := item.NewList(1)
	for i := 0; i < n; i++ {
		// Item i departs at 2 + (n-i)·1e-6: the last-opened bin closes
		// first, the worst case for a front-to-back scan.
		l.Add(0, 2+float64(n-i)*1e-6, vector.Of(1.0))
	}
	return l
}

func BenchmarkBinChurnClose(b *testing.B) {
	for _, n := range []int{1000, 2000, 4000, 8000} {
		l := churnInstance(n)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			p := NewNextFit() // O(1) Select, isolating close cost
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Simulate(l, p)
				if err != nil {
					b.Fatal(err)
				}
				if res.BinsOpened != n {
					b.Fatalf("bins opened = %d, want %d", res.BinsOpened, n)
				}
			}
		})
	}
}

// churnHotPathInstance builds the load-accounting worst case: bins full of
// long-lived anchor items plus a long tail of short-lived churn items, so
// every churn arrival and departure hits a bin holding k active items.
//
// Layout: `bins` bins are each anchored by k items of per-dimension size
// (1-1.5c)/k arriving at t=0 and living until the end of the run, where
// c = 0.5/(k+1) is the churn size. The anchor size exceeds the residual
// capacity 1.5c, so no bin accepts a (k+1)-th anchor, and exactly one churn
// item fits in a bin at a time (a second would need capacity 2c > 1.5c).
// Churn items then arrive strictly sequentially — item j lives [1+j, 1+j+0.5)
// — so the steady state alternates pack and departure events against bins
// whose active population stays pinned at k (or k+1 mid-churn).
//
// Every policy is deterministic on this family: all bins carry identical
// loads, so Best/Worst Fit tie-break to bin 0, First Fit scans to bin 0, and
// Move To Front keeps its leader. The per-event cost is therefore exactly the
// engine's load-accounting cost at k active items — the quantity this
// benchmark exists to track.
func churnHotPathInstance(d, bins, k, churn int) *item.List {
	c := 0.5 / float64(k+1)
	a := (1 - 1.5*c) / float64(k)
	end := float64(churn) + 2
	l := item.NewList(d)
	for b := 0; b < bins; b++ {
		for i := 0; i < k; i++ {
			l.Add(0, end, vector.Uniform(d, a))
		}
	}
	for j := 0; j < churn; j++ {
		t := 1 + float64(j)
		l.Add(t, t+0.5, vector.Uniform(d, c))
	}
	return l
}

// BenchmarkChurnHotPath is the per-event hot-path benchmark: many long-lived
// items per bin, one departure per arrival in steady state. Load accounting
// that costs O(k·log k) per event dominates this family; the incremental
// engine should be flat in k. Results feed BENCH_core.json (make bench-json).
func BenchmarkChurnHotPath(b *testing.B) {
	const (
		bins  = 16
		k     = 64 // active items per bin: the ISSUE's churn floor
		churn = 2048
	)
	for _, d := range []int{1, 2, 5} {
		l := churnHotPathInstance(d, bins, k, churn)
		for _, name := range []string{"FirstFit", "MoveToFront", "BestFit"} {
			b.Run(fmt.Sprintf("policy=%s/d=%d", name, d), func(b *testing.B) {
				p, err := NewPolicy(name, 1)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := Simulate(l, p)
					if err != nil {
						b.Fatal(err)
					}
					if res.BinsOpened != bins {
						b.Fatalf("bins opened = %d, want %d", res.BinsOpened, bins)
					}
				}
				events := float64(2 * l.Len()) // one arrival + one departure per item
				b.ReportMetric(events*float64(b.N)/b.Elapsed().Seconds(), "events/s")
			})
		}
	}
}

// BenchmarkSimulateUniform tracks end-to-end engine throughput on the
// paper's workload model, for before/after comparisons when optimising the
// hot path.
func BenchmarkSimulateUniform(b *testing.B) {
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 2000, Mu: 100, T: 1000, B: 100}, 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range []string{"FirstFit", "MoveToFront", "BestFit"} {
		b.Run(name, func(b *testing.B) {
			p, err := NewPolicy(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Simulate(l, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
