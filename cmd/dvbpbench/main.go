// Command dvbpbench regenerates the paper's evaluation end to end:
//
//	-experiment fig4                 Figure 4 (all three panels or -d one)
//	-experiment table1               Table 1 lower-bound constructions
//	-experiment ubcheck              Table 1 upper-bound validation
//	-experiment trueratio            true ratios via exact OPT
//	-experiment quality              packing-vs-alignment metrics
//	-experiment ablation-bestfit     Best Fit load-measure ablation
//	-experiment ablation-clairvoyant clairvoyant-vs-online ablation
//	-experiment ablation-billing     billing-granularity ablation
//	-experiment frag                 fragmentation head-to-head across trace models
//	-experiment defrag               budgeted defragmentation vs irrevocable baseline
//	-experiment all                  everything above
//
// The full paper grid (-instances 1000) reproduces Table 2 exactly; smaller
// -instances values keep the shape with wider error bars. Results print as
// ASCII tables and, with -out DIR, are also written as CSV and SVG.
//
// Sharding: fig4 and table1 decompose into independent shards. -json-out
// writes the run's raw per-shard results as a sweep document; -shard k/m
// restricts one invocation to the shards congruent to k mod m (for splitting
// a sweep across processes or machines) and requires -json-out. -merge
// reassembles part files into the full sweep and renders it; the merged JSON
// is byte-identical to a single-process run regardless of -workers or how the
// work was sliced (DESIGN.md §9).
//
// Observability: -metrics attaches a shared metrics.Collector to every
// simulation the chosen experiments run and dumps aggregate JSON +
// Prometheus-text snapshots at the end (also into -out as metrics.json /
// metrics.prom). -cpuprofile and -memprofile write pprof profiles alongside
// the benchmark numbers, and -pprof ADDR serves net/http/pprof live while
// the run executes (e.g. -pprof localhost:6060).
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"

	"dvbp/internal/cli"
	"dvbp/internal/core"
	"dvbp/internal/experiments"
	"dvbp/internal/metrics"
	"dvbp/internal/migrate"
	"dvbp/internal/report"
)

// collector is the run-wide metrics collector (nil without -metrics).
var collector *metrics.Collector

// observer returns the collector as a core.Observer, or a nil interface so
// experiment configs treat it as absent.
func observer() core.Observer {
	if collector == nil {
		return nil
	}
	return collector
}

// cleanup flushes profiles; fatal runs it before exiting so -cpuprofile
// output survives failed runs.
var cleanup = func() {}

// benchCtx carries the -timeout deadline into every experiment; experiments
// thread it to internal/parallel, which cancels outstanding trials.
var benchCtx = context.Background()

// outDirGlobal mirrors -out so fatal can flush partial metrics on timeout.
var outDirGlobal string

func main() {
	var (
		experiment = flag.String("experiment", "fig4", "fig4 | table1 | ubcheck | trueratio | quality | ablation-bestfit | ablation-clairvoyant | ablation-billing | frag | defrag | all")
		dFlag      = flag.Int("d", 0, "restrict fig4 to one dimension panel (0 = all of 1,2,5)")
		instances  = flag.Int("instances", 1000, "instances per cell (paper: 1000)")
		mus        = flag.String("mus", "1,2,5,10,100,200", "comma-separated mu sweep")
		seed       = flag.Int64("seed", 1, "master seed")
		workers    = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		outDir     = flag.String("out", "", "directory for CSV/SVG artefacts (optional)")
		shardF     = flag.String("shard", "", "run only sweep slice k/m (fig4/table1; requires -json-out)")
		jsonOut    = flag.String("json-out", "", "write the fig4/table1 sweep document as JSON to this file (- = stdout)")
		mergeF     = flag.String("merge", "", "merge comma-separated sweep part files into the full sweep, write it to -json-out (default stdout), render the result, and exit")
		metricsF   = flag.Bool("metrics", false, "collect engine metrics across all runs and dump JSON + Prometheus snapshots")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile to this file at exit")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof on this address while running (e.g. localhost:6060)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none); on expiry profiles and partial metrics are flushed and the exit code is 2")

		benchJSON     = flag.String("benchjson", "", "convert `go test -bench` output from this file (- = stdin) to JSON and exit; see make bench-json")
		benchJSONBase = flag.String("benchjson-baseline", "", "optional second -bench output embedded as the baseline section")
		benchJSONOut  = flag.String("benchjson-out", "", "destination for -benchjson output (default stdout)")

		serveLoad    = flag.String("serve-load", "", "drive placement load against the dvbpserver at this base URL, recording acknowledgements to -serve-acks, then exit")
		serveVerify  = flag.String("serve-verify", "", "verify every acknowledgement in -serve-acks against the dvbpserver at this base URL, then exit")
		serveAcks    = flag.String("serve-acks", "", "JSON-lines acknowledgement file shared by -serve-load and -serve-verify")
		serveTenants = flag.Int("serve-tenants", 4, "tenants -serve-load creates and drives")
		serveItems   = flag.Int("serve-items", 400, "placements per tenant for -serve-load")
		serveDim     = flag.Int("serve-d", 2, "item dimensions for -serve-load tenants")
	)
	// -migrate/-migrate-period/-migrate-moves/-migrate-cost override the
	// defrag experiment's default budgeted configuration.
	var mig migrate.Config
	mig.Register(flag.CommandLine, "")
	flag.Parse()

	if *serveLoad != "" || *serveVerify != "" {
		if *serveLoad != "" && *serveVerify != "" {
			fatal(fmt.Errorf("-serve-load and -serve-verify are separate passes; run them one at a time"))
		}
		var err error
		if *serveLoad != "" {
			err = runServeLoad(*serveLoad, *serveAcks, *serveTenants, *serveItems, *serveDim, *seed)
		} else {
			err = runServeVerify(*serveVerify, *serveAcks)
		}
		if err != nil {
			fatal(err)
		}
		return
	}
	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON, *benchJSONBase, *benchJSONOut); err != nil {
			fatal(err)
		}
		return
	}
	if *mergeF != "" {
		if err := runMerge(*mergeF, *jsonOut); err != nil {
			fatal(err)
		}
		return
	}
	shard, err := experiments.ParseShardSlice(*shardF)
	if err != nil {
		fatal(err)
	}
	if sweepable := *experiment == "fig4" || *experiment == "table1"; (!shard.All() || *jsonOut != "") && !sweepable {
		fatal(fmt.Errorf("-shard and -json-out apply only to -experiment fig4 or table1"))
	}
	if !shard.All() && *jsonOut == "" {
		fatal(fmt.Errorf("-shard produces a partial sweep; give it a -json-out path to merge later"))
	}

	outDirGlobal = *outDir
	if *timeout > 0 {
		var cancel context.CancelFunc
		benchCtx, cancel = context.WithTimeout(benchCtx, *timeout)
		defer cancel()
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatal(err)
		}
	}
	if *metricsF {
		collector = metrics.NewCollector()
	}
	startProfiling(*cpuProfile, *memProfile, *pprofAddr)
	defer runCleanup()

	run := func(name string) {
		switch name {
		case "fig4":
			runFigure4(*dFlag, *instances, *mus, *seed, *workers, shard, *jsonOut, *outDir)
		case "table1":
			runTable1(*seed, *workers, shard, *jsonOut, *outDir)
		case "ubcheck":
			runUBCheck(*instances, *seed, *workers)
		case "ablation-bestfit":
			runAblationBestFit(*instances, *seed, *workers, *outDir)
		case "ablation-clairvoyant":
			runAblationClairvoyant(*instances, *seed, *workers, *outDir)
		case "ablation-billing":
			runAblationBilling(*instances, *seed, *workers, *outDir)
		case "trueratio":
			runTrueRatio(*instances, *seed, *workers, *outDir)
		case "quality":
			runQuality(*instances, *seed, *workers, *outDir)
		case "frag":
			runFrag(*instances, *seed, *workers, *outDir)
		case "defrag":
			runDefrag(*instances, *seed, *workers, *outDir, mig)
		default:
			fatal(fmt.Errorf("unknown experiment %q", name))
		}
	}
	if *experiment == "all" {
		for _, e := range []string{"fig4", "table1", "ubcheck", "trueratio", "quality", "frag", "defrag", "ablation-bestfit", "ablation-clairvoyant", "ablation-billing"} {
			if err := benchCtx.Err(); err != nil {
				fatal(err)
			}
			run(e)
		}
	} else {
		run(*experiment)
	}

	if collector != nil {
		dumpMetrics(*outDir)
	}
}

// startProfiling wires the requested profiling sinks and installs cleanup.
func startProfiling(cpuProfile, memProfile, pprofAddr string) {
	if pprofAddr != "" {
		go func() {
			// The blank net/http/pprof import registers its handlers on the
			// default mux.
			if err := http.ListenAndServe(pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dvbpbench: pprof server:", err)
			}
		}()
	}
	var cpuFile *os.File
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		cpuFile = f
	}
	cleanup = func() {
		cleanup = func() {}
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memProfile != "" {
			f, err := os.Create(memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dvbpbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush garbage so the heap profile shows live data
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "dvbpbench:", err)
			}
		}
	}
}

func runCleanup() { cleanup() }

// dumpMetrics prints the aggregate snapshot and, with -out, writes
// metrics.json and metrics.prom next to the CSV/SVG artefacts.
func dumpMetrics(outDir string) {
	s := collector.Snapshot()
	if err := report.WriteMetrics(os.Stdout, "", s); err != nil {
		fatal(err)
	}
	if outDir != "" {
		writeFile(outDir, "metrics.json", s.JSON()+"\n")
		writeFile(outDir, "metrics.prom", s.Prometheus())
	}
}

func parseMus(s string) []int {
	var out []int
	for _, f := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil || v < 1 {
			fatal(fmt.Errorf("bad mu value %q", f))
		}
		out = append(out, v)
	}
	return out
}

func runFigure4(d, instances int, mus string, seed int64, workers int, shard experiments.ShardSlice, jsonOut, outDir string) {
	cfg := experiments.DefaultFigure4()
	cfg.Instances = instances
	cfg.Mus = parseMus(mus)
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = observer()
	cfg.Ctx = benchCtx
	cfg.Shard = shard
	if d != 0 {
		cfg.Ds = []int{d}
	}
	fmt.Printf("== Figure 4: d=%v mu=%v instances=%d (n=%d T=%d B=%d) shard=%s ==\n",
		cfg.Ds, cfg.Mus, cfg.Instances, cfg.N, cfg.T, cfg.B, shard)
	sweep, err := experiments.RunFigure4Sweep(cfg)
	if err != nil {
		fatal(err)
	}
	if !writeSweep(sweep, jsonOut) {
		return // partial slice: tables need the merged sweep
	}
	res, err := experiments.Figure4SweepResult(sweep)
	if err != nil {
		fatal(err)
	}
	for _, dd := range cfg.Ds {
		tbl := res.Table(dd)
		fmt.Print(tbl.Render())
		fmt.Printf("ranking at mu=%d: %s\n\n", cfg.Mus[len(cfg.Mus)-1],
			strings.Join(res.Ranking(dd, cfg.Mus[len(cfg.Mus)-1]), " < "))
		if outDir != "" {
			writeCSV(outDir, fmt.Sprintf("figure4_d%d.csv", dd), tbl)
			writeFile(outDir, fmt.Sprintf("figure4_d%d.svg", dd), res.Chart(dd).SVG())
		}
	}
}

func runTable1(seed int64, workers int, shard experiments.ShardSlice, jsonOut, outDir string) {
	cfg := experiments.DefaultTable1()
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = observer()
	cfg.Ctx = benchCtx
	cfg.Shard = shard
	fmt.Printf("== Table 1 lower-bound constructions: d=%d mu=%g params=%v shard=%s ==\n", cfg.D, cfg.Mu, cfg.Params, shard)
	sweep, err := experiments.RunTable1Sweep(cfg)
	if err != nil {
		fatal(err)
	}
	if !writeSweep(sweep, jsonOut) {
		return
	}
	rows, err := experiments.Table1Rows(sweep)
	if err != nil {
		fatal(err)
	}
	tbl := experiments.AdversarialTable(rows)
	fmt.Print(tbl.Render())
	bad := 0
	for _, r := range rows {
		if !r.Consistent() {
			bad++
		}
	}
	fmt.Printf("consistency: %d/%d rows respect the Table 1 bounds\n\n", len(rows)-bad, len(rows))
	if outDir != "" {
		writeCSV(outDir, "table1_adversarial.csv", tbl)
	}
}

func runUBCheck(instances int, seed int64, workers int) {
	cfg := experiments.DefaultUpperBoundCheck()
	if instances < cfg.Instances {
		cfg.Instances = instances
	}
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = observer()
	cfg.Ctx = benchCtx
	fmt.Printf("== Table 1 upper-bound validation: %d instances of d=%d n=%d mu=%d ==\n",
		cfg.Instances, cfg.D, cfg.N, cfg.Mu)
	viol, checked, err := experiments.RunUpperBoundCheck(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("checked %d (instance, policy) pairs: %d violations\n\n", checked, len(viol))
	for _, v := range viol {
		fmt.Printf("  VIOLATION: %+v\n", v)
	}
}

func ablationCfg(instances int, seed int64, workers int) experiments.AblationConfig {
	cfg := experiments.DefaultAblation()
	if instances < cfg.Instances {
		cfg.Instances = instances
	}
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = observer()
	cfg.Ctx = benchCtx
	return cfg
}

func runAblationBestFit(instances int, seed int64, workers int, outDir string) {
	cfg := ablationCfg(instances, seed, workers)
	fmt.Printf("== Ablation: Best Fit load measure (d=%d mu=%d, %d instances) ==\n", cfg.D, cfg.Mu, cfg.Instances)
	m, err := experiments.RunBestFitMeasureAblation(cfg)
	if err != nil {
		fatal(err)
	}
	tbl := experiments.SummaryTable("Best Fit load measures", []string{"BestFit", "BestFit-L1", "BestFit-Lp2"}, m)
	fmt.Print(tbl.Render())
	fmt.Println()
	if outDir != "" {
		writeCSV(outDir, "ablation_bestfit.csv", tbl)
	}
}

func runAblationClairvoyant(instances int, seed int64, workers int, outDir string) {
	cfg := ablationCfg(instances, seed, workers)
	fmt.Printf("== Ablation: clairvoyant extensions (d=%d mu=%d, %d instances) ==\n", cfg.D, cfg.Mu, cfg.Instances)
	m, err := experiments.RunClairvoyanceAblation(cfg)
	if err != nil {
		fatal(err)
	}
	tbl := experiments.SummaryTable("Clairvoyant vs non-clairvoyant",
		[]string{"MoveToFront", "FirstFit", "DurationClassFit", "WindowedClassFit", "AlignedBestFit"}, m)
	fmt.Print(tbl.Render())
	fmt.Println()
	if outDir != "" {
		writeCSV(outDir, "ablation_clairvoyant.csv", tbl)
	}
}

func runAblationBilling(instances int, seed int64, workers int, outDir string) {
	cfg := ablationCfg(instances, seed, workers)
	const quantum = 10.0
	fmt.Printf("== Ablation: billing granularity (quantum=%g, d=%d mu=%d, %d instances) ==\n",
		quantum, cfg.D, cfg.Mu, cfg.Instances)
	rows, err := experiments.RunBillingAblation(cfg, quantum)
	if err != nil {
		fatal(err)
	}
	tbl := experiments.BillingTable(rows, quantum)
	fmt.Print(tbl.Render())
	fmt.Println()
	if outDir != "" {
		writeCSV(outDir, "ablation_billing.csv", tbl)
	}
}

func runTrueRatio(instances int, seed int64, workers int, outDir string) {
	cfg := experiments.DefaultTrueRatio()
	if instances < cfg.Instances {
		cfg.Instances = instances
	}
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = observer()
	cfg.Ctx = benchCtx
	fmt.Printf("== True competitive ratios via exact OPT (d=%d n=%d mu=%d, %d instances) ==\n",
		cfg.D, cfg.N, cfg.Mu, cfg.Instances)
	res, err := experiments.RunTrueRatio(cfg)
	if err != nil {
		fatal(err)
	}
	tbl := res.Table()
	fmt.Print(tbl.Render())
	fmt.Println()
	if outDir != "" {
		writeCSV(outDir, "trueratio.csv", tbl)
	}
}

func runFrag(instances int, seed int64, workers int, outDir string) {
	cfg := experiments.DefaultFrag()
	if instances < cfg.Instances {
		cfg.Instances = instances
	}
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = observer()
	cfg.Ctx = benchCtx
	fmt.Printf("== Fragmentation head-to-head (d=%d horizon=%g, %d instances per trace model) ==\n",
		cfg.D, cfg.Horizon, cfg.Instances)
	study, err := experiments.RunFrag(cfg)
	if err != nil {
		fatal(err)
	}
	for _, trace := range study.Traces {
		tbl := study.Table(trace)
		fmt.Print(tbl.Render())
		fmt.Printf("ranking on %s: %s\n\n", trace, strings.Join(study.Ranking(trace), " < "))
		if outDir != "" {
			writeCSV(outDir, fmt.Sprintf("frag_%s.csv", trace), tbl)
		}
	}
	flips := study.Flips("uniform", "azure", 0.01)
	fmt.Printf("ranking flips uniform vs azure (gap > 0.01): %d\n", len(flips))
	for _, f := range flips {
		fmt.Printf("  %s beats %s on %s (by %.4f) but loses on %s (by %.4f)\n",
			f.A, f.B, f.TraceA, f.GapA, f.TraceB, f.GapB)
	}
	fmt.Println()
	if outDir != "" {
		writeFile(outDir, "frag_ranking.svg", study.Chart().SVG())
	}
}

func runDefrag(instances int, seed int64, workers int, outDir string, mig migrate.Config) {
	cfg := experiments.DefaultDefrag()
	if instances < cfg.Instances {
		cfg.Instances = instances
	}
	cfg.Seed = seed
	cfg.Workers = workers
	cfg.Observer = observer()
	cfg.Ctx = benchCtx
	if mig.Enabled() {
		cfg.Migration = mig
	}
	fmt.Printf("== Budgeted defragmentation (d=%d horizon=%g, %d instances per trace model, %s) ==\n",
		cfg.D, cfg.Horizon, cfg.Instances, cfg.Migration)
	study, err := experiments.RunDefrag(cfg)
	if err != nil {
		fatal(err)
	}
	for _, trace := range study.Traces {
		tbl := study.Table(trace)
		fmt.Print(tbl.Render())
		improved, net := study.Improved(trace), study.NetWins(trace)
		fmt.Printf("improved usage-time or stranded·time on %s: %d/%d policies (%s)\n",
			trace, len(improved), len(study.Policies), strings.Join(improved, ", "))
		fmt.Printf("net wins after paying migration cost on %s: %d/%d policies (%s)\n\n",
			trace, len(net), len(study.Policies), strings.Join(net, ", "))
		if outDir != "" {
			writeCSV(outDir, fmt.Sprintf("defrag_%s.csv", trace), tbl)
		}
	}
	if outDir != "" {
		writeFile(outDir, "defrag_gain.svg", study.Chart().SVG())
	}
}

func runQuality(instances int, seed int64, workers int, outDir string) {
	cfg := ablationCfg(instances, seed, workers)
	fmt.Printf("== Packing vs alignment (d=%d mu=%d, %d instances) ==\n", cfg.D, cfg.Mu, cfg.Instances)
	rows, err := experiments.RunQuality(cfg)
	if err != nil {
		fatal(err)
	}
	tbl := experiments.QualityTable(rows)
	fmt.Print(tbl.Render())
	fmt.Println()
	if outDir != "" {
		writeCSV(outDir, "quality.csv", tbl)
	}
}

// writeSweep writes the sweep document to jsonOut when requested and reports
// whether the sweep is complete (i.e. whether folded tables can be rendered).
// A partial slice only produces the document; -merge folds it later.
func writeSweep[T any](s *experiments.Sweep[T], jsonOut string) bool {
	if jsonOut != "" {
		if err := writeSweepOut(s, jsonOut); err != nil {
			fatal(err)
		}
		if jsonOut != "-" {
			fmt.Printf("wrote sweep slice %s (%d of %d shards) to %s\n", s.Slice, len(s.Values), s.Shards, jsonOut)
		}
	}
	if !s.Complete() {
		fmt.Println("partial slice: run every slice, then -merge the parts to fold tables")
		return false
	}
	return true
}

// writeSweepOut encodes a sweep document to path ("-" = stdout).
func writeSweepOut[T any](s *experiments.Sweep[T], path string) error {
	if path == "-" {
		return s.EncodeJSON(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return s.EncodeJSON(f)
}

// runMerge reassembles sweep part files (written by -shard -json-out
// invocations) into the full sweep, writes it to jsonOut (default stdout) and
// renders the folded result. The experiment type is read from the first part.
func runMerge(spec, jsonOut string) error {
	files := strings.Split(spec, ",")
	for i := range files {
		files[i] = strings.TrimSpace(files[i])
	}
	exp, err := peekExperiment(files[0])
	if err != nil {
		return err
	}
	switch exp {
	case "figure4":
		merged, err := mergeParts[float64](files, exp)
		if err != nil {
			return err
		}
		if err := writeSweepOut(merged, orStdout(jsonOut)); err != nil {
			return err
		}
		res, err := experiments.Figure4SweepResult(merged)
		if err != nil {
			return err
		}
		for _, d := range res.Config.Ds {
			fmt.Print(res.Table(d).Render())
		}
	case "table1":
		merged, err := mergeParts[experiments.AdversarialRow](files, exp)
		if err != nil {
			return err
		}
		if err := writeSweepOut(merged, orStdout(jsonOut)); err != nil {
			return err
		}
		rows, err := experiments.Table1Rows(merged)
		if err != nil {
			return err
		}
		fmt.Print(experiments.AdversarialTable(rows).Render())
	default:
		return fmt.Errorf("cannot merge %q sweeps (only figure4 and table1 shard)", exp)
	}
	return nil
}

func orStdout(path string) string {
	if path == "" {
		return "-"
	}
	return path
}

// peekExperiment reads just the experiment name from a sweep file, so -merge
// can pick the right value type before the typed decode.
func peekExperiment(file string) (string, error) {
	b, err := os.ReadFile(file)
	if err != nil {
		return "", err
	}
	var hdr struct {
		Experiment string `json:"experiment"`
	}
	if err := json.Unmarshal(b, &hdr); err != nil {
		return "", fmt.Errorf("%s: %w", file, err)
	}
	if hdr.Experiment == "" {
		return "", fmt.Errorf("%s: not a dvbp sweep document", file)
	}
	return hdr.Experiment, nil
}

func mergeParts[T any](files []string, experiment string) (*experiments.Sweep[T], error) {
	parts := make([]*experiments.Sweep[T], 0, len(files))
	for _, file := range files {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		s, err := experiments.DecodeSweep[T](f, experiment)
		f.Close()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", file, err)
		}
		parts = append(parts, s)
	}
	return experiments.MergeSweeps(parts...)
}

func writeCSV(dir, name string, tbl *report.Table) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	if err := tbl.WriteCSV(f); err != nil {
		fatal(err)
	}
}

func writeFile(dir, name, content string) {
	if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	cleanup() // flush any open CPU/heap profile before exiting
	if cli.ExitCode(err) == cli.ExitTimeout {
		// The -timeout budget expired: flush whatever metrics accumulated so
		// the partial run is still inspectable, then exit distinctly.
		if collector != nil {
			dumpMetrics(outDirGlobal)
		}
		err = fmt.Errorf("timeout: %w", err)
	}
	cli.Fatal("dvbpbench", err)
}
