// Benchmark harness: one testing.B benchmark per table/figure of the paper
// (see DESIGN.md §3 for the experiment index) plus engine micro-benchmarks.
//
// The figure benchmarks run reduced instance counts per iteration so that
// `go test -bench=.` completes in minutes; cmd/dvbpbench is the
// full-fidelity harness (1000 instances per cell, the paper's Table 2 grid)
// whose output is recorded in EXPERIMENTS.md.
package dvbp_test

import (
	"fmt"
	"testing"

	"dvbp/internal/adversary"
	"dvbp/internal/core"
	"dvbp/internal/experiments"
	"dvbp/internal/lowerbound"
	"dvbp/internal/offline"
	"dvbp/internal/workload"
)

// benchFigure4Panel runs one reduced Figure 4 panel (all six μ values, few
// instances) per iteration and reports the mean MTF ratio as a metric.
func benchFigure4Panel(b *testing.B, d int) {
	cfg := experiments.Figure4Config{
		Ds:        []int{d},
		Mus:       []int{1, 2, 5, 10, 100, 200},
		Instances: 5,
		N:         1000,
		T:         1000,
		B:         100,
		Policies:  core.PolicyNames(),
		Seed:      1,
	}
	b.ReportAllocs()
	var last *experiments.Figure4Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunFigure4(cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	if last != nil {
		s := last.Cells[experiments.Cell{D: d, Mu: 200, Policy: "MoveToFront"}]
		b.ReportMetric(s.Mean, "MTF-ratio@mu200")
	}
}

// BenchmarkFigure4D1 regenerates the d=1 panel of Figure 4 (reduced).
func BenchmarkFigure4D1(b *testing.B) { benchFigure4Panel(b, 1) }

// BenchmarkFigure4D2 regenerates the d=2 panel of Figure 4 (reduced).
func BenchmarkFigure4D2(b *testing.B) { benchFigure4Panel(b, 2) }

// BenchmarkFigure4D5 regenerates the d=5 panel of Figure 4 (reduced).
func BenchmarkFigure4D5(b *testing.B) { benchFigure4Panel(b, 5) }

// BenchmarkTheorem5AnyFitLB regenerates the Table 1 Any Fit lower-bound row:
// the Theorem 5 construction at k=64, d=2, μ=10 under First Fit. The
// reported metric is the certified competitive-ratio lower bound.
func BenchmarkTheorem5AnyFitLB(b *testing.B) {
	in, err := adversary.Theorem5(2, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewFirstFit()
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := core.Simulate(in.List, p)
		if err != nil {
			b.Fatal(err)
		}
		ratio = in.MeasuredRatio(res.Cost)
	}
	b.ReportMetric(ratio, "certified-CR")
	b.ReportMetric(in.AsymptoticRatio, "target-CR")
}

// BenchmarkTheorem6NextFitLB regenerates the Table 1 Next Fit lower-bound
// row: Theorem 6 at k=64, d=2, μ=10.
func BenchmarkTheorem6NextFitLB(b *testing.B) {
	in, err := adversary.Theorem6(2, 64, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewNextFit()
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := core.Simulate(in.List, p)
		if err != nil {
			b.Fatal(err)
		}
		ratio = in.MeasuredRatio(res.Cost)
	}
	b.ReportMetric(ratio, "certified-CR")
	b.ReportMetric(in.AsymptoticRatio, "target-CR")
}

// BenchmarkTheorem8MTFLB regenerates the Table 1 Move To Front lower-bound
// row: Theorem 8 at n=128, μ=10.
func BenchmarkTheorem8MTFLB(b *testing.B) {
	in, err := adversary.Theorem8(128, 10)
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewMoveToFront()
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := core.Simulate(in.List, p)
		if err != nil {
			b.Fatal(err)
		}
		ratio = in.MeasuredRatio(res.Cost)
	}
	b.ReportMetric(ratio, "certified-CR")
	b.ReportMetric(in.AsymptoticRatio, "target-CR")
}

// BenchmarkBestFitUnbounded regenerates the Table 1 "Best Fit unbounded" row
// via the pillar/sliver degradation family at R=32.
func BenchmarkBestFitUnbounded(b *testing.B) {
	in, err := adversary.BestFitPillars(32, 32*32)
	if err != nil {
		b.Fatal(err)
	}
	p := core.NewBestFit(core.MaxLoad())
	b.ReportAllocs()
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := core.Simulate(in.List, p)
		if err != nil {
			b.Fatal(err)
		}
		ratio = in.MeasuredRatio(res.Cost)
	}
	b.ReportMetric(ratio, "certified-CR")
}

// BenchmarkTable1UpperBoundCheck validates the Table 1 upper bounds
// (cost ≤ bound·OPTUpper) on random instances; the metric is violations
// found (must be 0).
func BenchmarkTable1UpperBoundCheck(b *testing.B) {
	cfg := experiments.UpperBoundCheckConfig{D: 2, N: 150, Mu: 10, T: 150, B: 100, Instances: 5, Seed: 1}
	b.ReportAllocs()
	violations := 0
	for i := 0; i < b.N; i++ {
		viol, _, err := experiments.RunUpperBoundCheck(cfg)
		if err != nil {
			b.Fatal(err)
		}
		violations += len(viol)
	}
	b.ReportMetric(float64(violations), "violations")
}

// BenchmarkAblationBestFitMeasure regenerates the Best Fit load-measure
// ablation (reduced).
func BenchmarkAblationBestFitMeasure(b *testing.B) {
	cfg := experiments.AblationConfig{D: 3, N: 500, Mu: 50, T: 500, B: 100, Instances: 5, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBestFitMeasureAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationClairvoyant regenerates the clairvoyant ablation (reduced).
func BenchmarkAblationClairvoyant(b *testing.B) {
	cfg := experiments.AblationConfig{D: 2, N: 500, Mu: 50, T: 500, B: 100, Instances: 5, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunClairvoyanceAblation(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationBilling regenerates the billing-granularity ablation
// (reduced).
func BenchmarkAblationBilling(b *testing.B) {
	cfg := experiments.AblationConfig{D: 2, N: 500, Mu: 10, T: 500, B: 100, Instances: 5, Seed: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunBillingAblation(cfg, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTrueRatioExactOPT regenerates the exact-OPT study (reduced): true
// competitive ratios on small instances, with the OPT/LB tightness reported
// as a metric.
func BenchmarkTrueRatioExactOPT(b *testing.B) {
	cfg := experiments.TrueRatioConfig{D: 2, N: 40, Mu: 5, T: 100, B: 100, Instances: 10, Seed: 1, MaxActive: 16}
	b.ReportAllocs()
	var tightness float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.RunTrueRatio(cfg)
		if err != nil {
			b.Fatal(err)
		}
		tightness = res.LBTightness.Mean
	}
	b.ReportMetric(tightness, "OPT/LB")
}

// BenchmarkPolicyThroughput measures items/sec of each policy on a paper-
// sized instance (d=2, n=1000, μ=100).
func BenchmarkPolicyThroughput(b *testing.B) {
	l, err := workload.Uniform(workload.PaperDefaults(2, 100), 1)
	if err != nil {
		b.Fatal(err)
	}
	for _, name := range core.PolicyNames() {
		b.Run(name, func(b *testing.B) {
			p, err := core.NewPolicy(name, 1)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := core.Simulate(l, p); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(l.Len())*float64(b.N)/b.Elapsed().Seconds(), "items/s")
		})
	}
}

// BenchmarkLowerBoundSweep measures the Lemma 1(i) sweep-line throughput.
func BenchmarkLowerBoundSweep(b *testing.B) {
	l, err := workload.Uniform(workload.PaperDefaults(5, 100), 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = lowerbound.IntegralBound(l)
	}
}

// BenchmarkOfflinePackers measures the OPT-bracketing heuristics.
func BenchmarkOfflinePackers(b *testing.B) {
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 300, Mu: 10, T: 300, B: 100}, 1)
	if err != nil {
		b.Fatal(err)
	}
	packers := map[string]func() error{
		"FFD":             func() error { _, err := offline.FirstFitDecreasing(l); return err },
		"DurationClasses": func() error { _, err := offline.DurationClasses(l); return err },
		"GreedyExtension": func() error { _, err := offline.GreedyExtension(l); return err },
	}
	for name, f := range packers {
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := f(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure4SweepThroughput measures shard-scheduler throughput on the
// sharded Figure 4 sweep at 1 and 8 workers; the metric is shards completed
// per second (one shard = one policy on one regenerated instance). The
// "workers=N" spelling keeps the two entries distinct in BENCH_core.json
// (the converter strips a trailing -N as the GOMAXPROCS suffix).
func BenchmarkFigure4SweepThroughput(b *testing.B) {
	for _, w := range []int{1, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			cfg := experiments.Figure4Config{
				Ds: []int{1, 2}, Mus: []int{5, 10}, Instances: 8,
				N: 300, T: 300, B: 100,
				Policies: []string{"MoveToFront", "FirstFit", "NextFit"},
				Seed:     1,
			}
			cfg.Workers = w
			shards := cfg.ShardCount()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunFigure4Sweep(cfg); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(shards)*float64(b.N)/b.Elapsed().Seconds(), "shards/sec")
		})
	}
}

// BenchmarkParallelScaling measures Figure 4 cell throughput at 1, 2, 4 and
// 8 workers.
func BenchmarkParallelScaling(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers-%d", w), func(b *testing.B) {
			cfg := experiments.Figure4Config{
				Ds: []int{2}, Mus: []int{10}, Instances: 16,
				N: 500, T: 500, B: 100,
				Policies: []string{"MoveToFront", "FirstFit"},
				Seed:     1,
			}
			cfg.Workers = w
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := experiments.RunFigure4(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
