package faults

import (
	"reflect"
	"sync"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/workload"
)

// TestMTBFStatelessUnderConcurrency pins the injector's core contract: crash
// schedules are pure functions of (Seed, binID), so concurrent engines
// sharing one MTBF value (it is copied by value into each run's config, but
// even literal sharing must be safe) see exactly the sequential schedule —
// no hidden RNG state, no call-order dependence. Run under -race.
func TestMTBFStatelessUnderConcurrency(t *testing.T) {
	m := MTBF{Mean: 50, Seed: 42}
	const bins = 500

	want := make([]float64, bins)
	for id := range want {
		at, ok := m.BinOpened(id, float64(id))
		if !ok {
			t.Fatalf("bin %d: no crash scheduled", id)
		}
		want[id] = at
	}

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Each goroutine walks the bins in a different order.
			for k := 0; k < bins; k++ {
				id := (k*7 + g*13) % bins
				at, ok := m.BinOpened(id, float64(id))
				if !ok || at != want[id] {
					t.Errorf("goroutine %d: bin %d = (%v, %v), want (%v, true)", g, id, at, ok, want[id])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestRetryScheduleDeterminismStress pins the end-to-end retry contract the
// persistence layer's replay verification depends on: with a seeded MTBF
// injector and a backoff retry policy, the engine's full event stream —
// including the exact instant of every retry — is a pure function of the
// seeds. The run is recomputed concurrently and compared record for record;
// the Makefile stress target repeats it (-count) under -race.
func TestRetryScheduleDeterminismStress(t *testing.T) {
	l, err := workload.Uniform(workload.UniformConfig{D: 2, N: 300, Mu: 8, T: 150, B: 100}, 11)
	if err != nil {
		t.Fatal(err)
	}
	run := func() []core.EventRecord {
		p, err := core.NewPolicy("MoveToFront", 11)
		if err != nil {
			t.Error(err)
			return nil
		}
		e, err := core.NewEngine(l, p,
			core.WithFaults(MTBF{Mean: 20, Seed: 3}, Backoff{Base: 0.5, Cap: 6}),
			core.WithMaxBins(10), core.WithAdmissionQueue(4))
		if err != nil {
			t.Error(err)
			return nil
		}
		var recs []core.EventRecord
		for {
			rec, ok, err := e.Step()
			if err != nil {
				t.Error(err)
				e.Close()
				return nil
			}
			if !ok {
				break
			}
			recs = append(recs, rec)
		}
		if _, err := e.Finish(); err != nil {
			t.Error(err)
			return nil
		}
		return recs
	}

	want := run()
	if len(want) == 0 {
		t.Fatal("reference run produced no events")
	}
	retries := 0
	for _, r := range want {
		if r.Class == core.EventRetry {
			retries++
		}
	}
	if retries == 0 {
		t.Fatal("fixture schedules no retries; the test would pin nothing")
	}

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := run(); !reflect.DeepEqual(got, want) {
				t.Errorf("concurrent rerun diverged (%d vs %d events)", len(got), len(want))
			}
		}()
	}
	wg.Wait()

	// The policies themselves must be pure in the attempt number alone.
	b := Backoff{Base: 0.5, Factor: 3, Cap: 10}
	for attempt := 1; attempt <= 1000; attempt++ {
		if b.Delay(attempt) != b.Delay(attempt) {
			t.Fatalf("Backoff.Delay(%d) is not deterministic", attempt)
		}
	}
}

// TestTraceConcurrentReads verifies a Trace can serve concurrent engines:
// its per-bin schedule map is immutable after construction.
func TestTraceConcurrentReads(t *testing.T) {
	events := []TraceEvent{{BinID: 0, At: 5}, {BinID: 1, At: 7}, {BinID: 3, At: 2}}
	tr, err := NewTrace(events)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 1000; k++ {
				for _, ev := range events {
					at, ok := tr.BinOpened(ev.BinID, 0)
					if !ok || at != ev.At {
						t.Errorf("bin %d = (%v, %v), want (%v, true)", ev.BinID, at, ok, ev.At)
						return
					}
				}
				if _, ok := tr.BinOpened(99, 0); ok {
					t.Error("bin 99 should have no scheduled crash")
					return
				}
			}
		}()
	}
	wg.Wait()
}
