// Package parallel provides the deterministic fan-out machinery the
// experiment harness uses to run thousands of independent simulation trials
// across CPU cores.
//
// # Scheduler
//
// The execution engine is a work-stealing shard scheduler (see Run): bounded
// workers own contiguous index blocks and steal from each other when they run
// dry, so throughput degrades gracefully when shard costs are skewed (a few
// slow exact-OPT shards among thousands of cheap heuristic ones).
//
// # Determinism contract
//
// Every shard derives its behaviour from its index alone (seeded via SeedFor
// or Derive) and results are collected by index, so the outcome is
// bit-identical regardless of GOMAXPROCS, steal pattern, or completion
// order. Errors cancel the remaining work; the reported error is the
// smallest-indexed failure observed before cancellation took effect — again
// independent of scheduling. Worker panics are captured and rethrown as
// *PanicError rather than tearing down the process.
//
// # API layers
//
//   - Run is the primitive: n indexed shards, a context for cancellation,
//     RunOptions for worker count and ProgressFunc reporting.
//   - MapShards collects per-shard results by index on top of Run.
//   - Map and Reduce (parallel.go) are the convenience layer used by the
//     experiment sweeps; Reduce folds in index order, keeping aggregate
//     statistics deterministic too.
//   - SeedFor and Derive split a base seed into per-shard and per-label
//     streams with a SplitMix64 step, so adding a new randomness consumer
//     never perturbs existing streams.
//
// The `make stress` target repeatedly runs this package's tests under the
// race detector with GOMAXPROCS forced above the core count to shake out
// rare interleavings.
package parallel
