package core

import (
	"fmt"
	"math/rand"
	"testing"

	"dvbp/internal/binindex"
	"dvbp/internal/vector"
)

// fleet builds n open bins with heterogeneous loads (uniform on the 1%-grid
// in [0.30, 0.99] per dimension) plus the matching indexed store for the
// policy's key discipline — the steady state of a fleet-scale run, isolated
// from the event loop so the benchmark times nothing but Select.
func fleet(p IndexedPolicy, n, d int, seed int64) ([]*Bin, *BinIndex) {
	r := rand.New(rand.NewSource(seed))
	prof := p.IndexProfile()
	ix := binindex.New[*Bin](d)
	open := make([]*Bin, n)
	size := vector.New(d)
	for i := range open {
		b := newBin(i, d, 0)
		for j := range size {
			size[j] = float64(30+r.Intn(70)) / 100
		}
		if err := b.pack(i, size); err != nil {
			panic(err)
		}
		open[i] = b
		if prof.Recency {
			ix.InsertFront(b.ID, b.load, b)
		} else {
			kf, ks := prof.Key(b)
			ix.Insert(kf, ks, b.ID, b.load, b)
		}
	}
	return open, ix
}

// fleetRequests cycles item sizes from small (most bins fit; Best Fit's
// linear scan still walks the whole fleet to take the argmax) to large (few
// bins fit; every policy's scan walks a long infeasible prefix).
var fleetSizes = []float64{0.05, 0.15, 0.35, 0.55}

// BenchmarkFleetSelect times one policy decision over a fleet of n open
// bins, linear scan vs indexed store — the tentpole claim of DESIGN.md §11.
// ns/op is the per-item Select cost; the "checks" metric would show the
// same gap (O(n) probes vs O(log n) pruned descent). Fleet sizes above 10⁴
// are skipped in -short mode so `make ci` stays fast; `make bench-json`
// runs the full ladder.
func BenchmarkFleetSelect(b *testing.B) {
	for _, tc := range []struct {
		policy string
		d      int
	}{
		{"BestFit", 1},
		{"BestFit", 2},
		{"FirstFit", 1},
		{"WorstFit", 2},
	} {
		p, err := NewPolicy(tc.policy, 1)
		if err != nil {
			b.Fatal(err)
		}
		ip := p.(IndexedPolicy)
		for _, n := range []int{10_000, 100_000, 1_000_000} {
			if testing.Short() && n > 10_000 {
				continue
			}
			open, ix := fleet(ip, n, tc.d, 42)
			req := Request{Size: vector.New(tc.d)}
			for _, mode := range []string{"linear", "indexed"} {
				b.Run(fmt.Sprintf("policy=%s/d=%d/n=%d/mode=%s", tc.policy, tc.d, n, mode), func(b *testing.B) {
					b.ReportAllocs()
					hits := 0
					for i := 0; i < b.N; i++ {
						for j := range req.Size {
							req.Size[j] = fleetSizes[i%len(fleetSizes)]
						}
						var chosen *Bin
						if mode == "linear" {
							chosen = p.Select(req, open)
						} else {
							chosen = ip.SelectIndexed(req, ix)
						}
						if chosen != nil {
							hits++
						}
					}
					if hits == 0 {
						b.Fatal("no request ever fit: benchmark is measuring nothing")
					}
				})
			}
		}
	}
}

// TestFleetSelectAgreement guards the benchmark itself: on the exact fleets
// BenchmarkFleetSelect times, both modes must choose the same bin for every
// probe size (a divergence would mean the benchmark compares two different
// computations).
func TestFleetSelectAgreement(t *testing.T) {
	for _, tc := range []struct {
		policy string
		d      int
	}{{"BestFit", 1}, {"BestFit", 2}, {"FirstFit", 1}, {"WorstFit", 2}} {
		p, err := NewPolicy(tc.policy, 1)
		if err != nil {
			t.Fatal(err)
		}
		ip := p.(IndexedPolicy)
		open, ix := fleet(ip, 10_000, tc.d, 42)
		req := Request{Size: vector.New(tc.d)}
		for _, s := range fleetSizes {
			for j := range req.Size {
				req.Size[j] = s
			}
			lin, idx := p.Select(req, open), ip.SelectIndexed(req, ix)
			if lin != idx {
				t.Errorf("%s d=%d size=%v: linear chose %v, indexed chose %v", tc.policy, tc.d, s, lin, idx)
			}
		}
	}
}
