package eventq

import "sort"

// Event carries a payload scheduled at a point in time. When two events share
// a Time, the one with the smaller Seq is delivered first.
type Event[T any] struct {
	Time    float64
	Seq     int64
	Payload T
}

// Queue is a min-heap of events. The zero value is an empty queue ready to
// use.
//
// The heap is sifted directly on the generic slice rather than through
// container/heap: the heap.Interface methods traffic in `any`, which boxes
// every pushed and popped event onto the GC heap — one allocation per event,
// exactly the engine hot path this package exists to serve. With the slice
// backing reused across pushes, steady-state Push/Pop are allocation-free.
type Queue[T any] struct {
	h []Event[T]
}

// Len returns the number of pending events.
func (q *Queue[T]) Len() int { return len(q.h) }

// Push schedules an event.
func (q *Queue[T]) Push(e Event[T]) {
	q.h = append(q.h, e)
	q.up(len(q.h) - 1)
}

// PushAt is shorthand for Push with the given fields.
func (q *Queue[T]) PushAt(t float64, seq int64, payload T) {
	q.Push(Event[T]{Time: t, Seq: seq, Payload: payload})
}

// Peek returns the earliest event without removing it. ok is false when the
// queue is empty.
func (q *Queue[T]) Peek() (e Event[T], ok bool) {
	if len(q.h) == 0 {
		return e, false
	}
	return q.h[0], true
}

// Pop removes and returns the earliest event. ok is false when the queue is
// empty.
func (q *Queue[T]) Pop() (e Event[T], ok bool) {
	n := len(q.h)
	if n == 0 {
		return e, false
	}
	e = q.h[0]
	q.h[0] = q.h[n-1]
	var zero Event[T]
	q.h[n-1] = zero // drop the payload so it doesn't pin memory
	q.h = q.h[:n-1]
	if len(q.h) > 1 {
		q.down(0)
	}
	return e, true
}

// PopUntil removes and returns, in order, every event with Time <= t.
func (q *Queue[T]) PopUntil(t float64) []Event[T] {
	var out []Event[T]
	for {
		e, ok := q.Peek()
		if !ok || e.Time > t {
			return out
		}
		q.Pop()
		out = append(out, e)
	}
}

func (q *Queue[T]) less(i, j int) bool {
	if q.h[i].Time != q.h[j].Time {
		return q.h[i].Time < q.h[j].Time
	}
	return q.h[i].Seq < q.h[j].Seq
}

func (q *Queue[T]) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			return
		}
		q.h[i], q.h[parent] = q.h[parent], q.h[i]
		i = parent
	}
}

func (q *Queue[T]) down(i int) {
	n := len(q.h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		least := l
		if r := l + 1; r < n && q.less(r, l) {
			least = r
		}
		if !q.less(least, i) {
			return
		}
		q.h[i], q.h[least] = q.h[least], q.h[i]
		i = least
	}
}

// Sorted returns a copy of all pending events in delivery order — ascending
// (Time, Seq). The queue is unchanged. The persistence layer serialises
// queues through it: re-Pushing the returned events into an empty queue
// yields a queue with the identical delivery order (the heap's internal
// layout may differ, but delivery order is a pure function of the event
// multiset).
func (q *Queue[T]) Sorted() []Event[T] {
	out := make([]Event[T], len(q.h))
	copy(out, q.h)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}
