package metrics

import (
	"sync"
	"time"

	"dvbp/internal/core"
)

// Metric names recorded by Collector.
const (
	// MetricItemsPlaced counts successful placements; on a single run it
	// equals Result.Items.
	MetricItemsPlaced = "dvbp_items_placed_total"
	// MetricBinsOpened counts bins opened; on a single run it equals
	// Result.BinsOpened.
	MetricBinsOpened = "dvbp_bins_opened_total"
	// MetricBinsClosed counts bins whose last item departed.
	MetricBinsClosed = "dvbp_bins_closed_total"
	// MetricFitChecks counts feasibility evaluations performed inside
	// policy Select: Bin.Fits calls on the linear-scan path, or the indexed
	// bin store's per-entry fit checks plus subtree prune evaluations on
	// the default sub-linear path (O(1) residual-bucket mask rejections
	// evaluate no load vector and are not counted). Engine-internal
	// feasibility re-checks are excluded. See DESIGN.md §11.
	MetricFitChecks = "dvbp_fit_checks_total"
	// MetricOpenBins gauges the currently open bin population.
	MetricOpenBins = "dvbp_open_bins"
	// MetricOpenBinsPeak gauges the open-bin high-water mark; on a single
	// run it equals Result.MaxConcurrentBins.
	MetricOpenBinsPeak = "dvbp_open_bins_peak"
	// MetricUsageTime gauges accrued bin usage time (simulated time units),
	// credited per bin as it closes; after a full run it equals Result.Cost.
	MetricUsageTime = "dvbp_usage_time_total"
	// MetricPlacementSeconds is a histogram of wall time per placement
	// (BeforePack to AfterPack).
	MetricPlacementSeconds = "dvbp_placement_seconds"
	// MetricFitChecksPerSelect is a histogram of fit checks per Select call.
	MetricFitChecksPerSelect = "dvbp_fit_checks_per_select"

	// Failure-path series, populated only when the engine runs with fault
	// injection or admission control (core.WithFaults / core.WithMaxBins).

	// MetricBinsCrashed counts bins forcibly closed by fault injection; on a
	// single run it equals Result.Crashes.
	MetricBinsCrashed = "dvbp_bins_crashed_total"
	// MetricItemsEvicted counts items displaced by crashes
	// (Result.Evictions).
	MetricItemsEvicted = "dvbp_items_evicted_total"
	// MetricItemsRetried counts successful re-placements of evicted items
	// (Result.Retries).
	MetricItemsRetried = "dvbp_items_retried_total"
	// MetricItemsLost counts evicted items that could not resume before
	// their departure (Result.ItemsLost).
	MetricItemsLost = "dvbp_items_lost_total"
	// MetricItemsRejected counts dispatches dropped at admission with no
	// queue (Result.Rejected).
	MetricItemsRejected = "dvbp_items_rejected_total"
	// MetricItemsTimedOut counts admission-queue entries that expired
	// (Result.TimedOut).
	MetricItemsTimedOut = "dvbp_items_timed_out_total"
	// MetricItemsQueued counts dispatches parked in the admission queue.
	MetricItemsQueued = "dvbp_items_queued_total"
	// MetricItemsDequeued counts queued dispatches that were eventually
	// placed (Result.QueuedPlaced).
	MetricItemsDequeued = "dvbp_items_dequeued_total"
	// MetricQueueDelay gauges total simulated time placed items spent
	// queued (Result.QueueDelay).
	MetricQueueDelay = "dvbp_queue_delay_total"
	// MetricItemsMigrated counts items relocated by consolidation passes
	// (DESIGN.md §14); on a single run it equals Result.Migrations.
	MetricItemsMigrated = "dvbp_items_migrated_total"
	// MetricMigrationCost gauges the accrued migration cost (moved L1 size ×
	// remaining duration); on a single run it equals Result.MigrationCost.
	MetricMigrationCost = "dvbp_migration_cost_total"
	// MetricBinsDrained counts bins closed because a migration move emptied
	// them; on a single run it equals Result.BinsDrained.
	MetricBinsDrained = "dvbp_bins_drained_total"
	// MetricLostUsage gauges total usage time lost to crashes
	// (Result.LostUsageTime).
	MetricLostUsage = "dvbp_lost_usage_time_total"
)

// DefaultPlacementBuckets are the placement-latency histogram bounds, in
// seconds. Placements are sub-microsecond for small open-bin populations, so
// the grid starts at 100ns.
var DefaultPlacementBuckets = []float64{
	100e-9, 250e-9, 500e-9, 1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 1e-2, 1e-1,
}

// DefaultFitCheckBuckets are the fit-checks-per-Select histogram bounds: a
// power-of-two grid because a Select scans at most the open-bin population.
var DefaultFitCheckBuckets = []float64{0, 1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096}

// CollectorOption configures NewCollector.
type CollectorOption func(*Collector)

// WithClock substitutes the wall clock, e.g. with a *Manual in tests.
func WithClock(c Clock) CollectorOption {
	return func(col *Collector) { col.clock = c }
}

// Collector records per-run engine series into a Registry. It implements
// core.Observer and the optional core.SelectObserver extension; attach it
// with core.WithObserver. See the package documentation for the exact
// Result correspondences and for the semantics of sharing one Collector
// across concurrent simulations.
type Collector struct {
	clock Clock
	reg   *Registry

	itemsPlaced *Counter
	binsOpened  *Counter
	binsClosed  *Counter
	fitChecks   *Counter

	openBins     *Gauge
	openBinsPeak *Gauge
	usageTime    *Gauge

	placementSeconds   *Histogram
	fitChecksPerSelect *Histogram

	binsCrashed   *Counter
	itemsEvicted  *Counter
	itemsRetried  *Counter
	itemsLost     *Counter
	itemsRejected *Counter
	itemsTimedOut *Counter
	itemsQueued   *Counter
	itemsDequeued *Counter
	queueDelay    *Gauge
	lostUsage     *Gauge

	itemsMigrated *Counter
	binsDrained   *Counter
	migrationCost *Gauge

	mu     sync.Mutex
	starts map[placeKey]time.Duration
}

// placeKey pairs the item identifiers that make a placement unique within
// one run, for matching BeforePack to AfterPack.
type placeKey struct{ id, seq int }

var (
	_ core.Observer          = (*Collector)(nil)
	_ core.SelectObserver    = (*Collector)(nil)
	_ core.FailureObserver   = (*Collector)(nil)
	_ core.MigrationObserver = (*Collector)(nil)
)

// NewCollector returns a Collector with a fresh Registry and wall clock.
func NewCollector(opts ...CollectorOption) *Collector {
	c := &Collector{
		clock:  NewWallClock(),
		reg:    NewRegistry(),
		starts: make(map[placeKey]time.Duration),
	}
	for _, o := range opts {
		o(c)
	}
	c.itemsPlaced = c.reg.Counter(MetricItemsPlaced, "items placed by the engine")
	c.binsOpened = c.reg.Counter(MetricBinsOpened, "bins opened")
	c.binsClosed = c.reg.Counter(MetricBinsClosed, "bins closed (last item departed)")
	c.fitChecks = c.reg.Counter(MetricFitChecks, "feasibility evaluations inside policy Select")
	c.openBins = c.reg.Gauge(MetricOpenBins, "currently open bins")
	c.openBinsPeak = c.reg.Gauge(MetricOpenBinsPeak, "open-bin high-water mark")
	c.usageTime = c.reg.Gauge(MetricUsageTime, "accrued bin usage time (simulated units)")
	c.placementSeconds = c.reg.Histogram(MetricPlacementSeconds,
		"wall time per placement in seconds", DefaultPlacementBuckets...)
	c.fitChecksPerSelect = c.reg.Histogram(MetricFitChecksPerSelect,
		"fit checks per policy Select call", DefaultFitCheckBuckets...)
	c.binsCrashed = c.reg.Counter(MetricBinsCrashed, "bins forcibly closed by fault injection")
	c.itemsEvicted = c.reg.Counter(MetricItemsEvicted, "items evicted by bin crashes")
	c.itemsRetried = c.reg.Counter(MetricItemsRetried, "evicted items successfully re-placed")
	c.itemsLost = c.reg.Counter(MetricItemsLost, "evicted items lost (could not resume before departure)")
	c.itemsRejected = c.reg.Counter(MetricItemsRejected, "dispatches rejected at admission (fleet full, no queue)")
	c.itemsTimedOut = c.reg.Counter(MetricItemsTimedOut, "admission-queue entries expired")
	c.itemsQueued = c.reg.Counter(MetricItemsQueued, "dispatches parked in the admission queue")
	c.itemsDequeued = c.reg.Counter(MetricItemsDequeued, "queued dispatches eventually placed")
	c.queueDelay = c.reg.Gauge(MetricQueueDelay, "total simulated queue wait of placed items")
	c.lostUsage = c.reg.Gauge(MetricLostUsage, "total usage time lost to crashes (simulated units)")
	c.itemsMigrated = c.reg.Counter(MetricItemsMigrated, "items relocated by consolidation passes")
	c.binsDrained = c.reg.Counter(MetricBinsDrained, "bins closed by a draining migration move")
	c.migrationCost = c.reg.Gauge(MetricMigrationCost, "accrued migration cost (moved size × remaining duration)")
	return c
}

// ItemMigrated implements core.MigrationObserver: it counts the move and
// accrues its cost. The drained bin's close itself arrives through BinClosed
// like any other close, so usage time needs no special handling here.
func (c *Collector) ItemMigrated(itemID int, from, to *core.Bin, t, cost float64, drained bool) {
	c.itemsMigrated.Inc()
	c.migrationCost.Add(cost)
	if drained {
		c.binsDrained.Inc()
	}
}

// Registry returns the collector's registry, so callers can register
// additional instruments alongside the engine series.
func (c *Collector) Registry() *Registry { return c.reg }

// Snapshot freezes the current state of every instrument.
func (c *Collector) Snapshot() Snapshot { return c.reg.Snapshot() }

// BeforePack implements core.Observer: it timestamps the placement start.
func (c *Collector) BeforePack(req core.Request, open []*core.Bin) {
	now := c.clock.Now()
	c.mu.Lock()
	c.starts[placeKey{req.ID, req.SeqNo}] = now
	c.mu.Unlock()
}

// AfterPack implements core.Observer: it counts the placement, observes its
// wall time, and maintains the open-bin gauge and high-water mark.
func (c *Collector) AfterPack(req core.Request, b *core.Bin, opened bool) {
	now := c.clock.Now()
	c.mu.Lock()
	key := placeKey{req.ID, req.SeqNo}
	if start, ok := c.starts[key]; ok {
		delete(c.starts, key)
		if d := now - start; d >= 0 {
			c.placementSeconds.Observe(d.Seconds())
		}
	}
	c.mu.Unlock()
	c.countPlacement(req, opened)
}

// countPlacement is the per-run-state-free part of AfterPack, shared with
// RunView. The open-bin gauge is adjusted atomically and its high-water mark
// taken from the value this update installed, so the peak is correct even
// when several runs feed the gauge concurrently.
func (c *Collector) countPlacement(req core.Request, opened bool) {
	c.itemsPlaced.Inc()
	if req.Attempt > 0 {
		c.itemsRetried.Inc()
	}
	if opened {
		c.binsOpened.Inc()
		c.openBinsPeak.SetMax(c.openBins.AddAndGet(1))
	}
}

// BinClosed implements core.Observer: it counts the close and accrues the
// bin's usage time.
func (c *Collector) BinClosed(b *core.Bin, t float64) {
	c.binsClosed.Inc()
	c.openBins.Add(-1)
	c.usageTime.Add(t - b.OpenedAt)
}

// AfterSelect implements core.SelectObserver: it accounts the policy's fit
// checks for the decision that just completed.
func (c *Collector) AfterSelect(req core.Request, chosen *core.Bin, fitChecks int) {
	c.fitChecks.Add(uint64(fitChecks))
	c.fitChecksPerSelect.Observe(float64(fitChecks))
}

// dropStart discards the pending placement timestamp for a dispatch that did
// not complete (queued or rejected instead of packed), so the starts map
// cannot leak under admission control.
func (c *Collector) dropStart(req core.Request) {
	c.mu.Lock()
	delete(c.starts, placeKey{req.ID, req.SeqNo})
	c.mu.Unlock()
}

// BinCrashed implements core.FailureObserver. The usage-time accrual happened
// in BinClosed (which the engine fires first); this only counts the crash.
func (c *Collector) BinCrashed(b *core.Bin, t float64, evicted int) {
	c.binsCrashed.Inc()
}

// ItemEvicted implements core.FailureObserver: resumeAt - t is exactly the
// usage time the crash cost this item, whether it resumes or is lost — the
// same accumulation order the engine uses for Result.LostUsageTime.
func (c *Collector) ItemEvicted(req core.Request, from *core.Bin, t, resumeAt float64) {
	c.itemsEvicted.Inc()
	c.lostUsage.Add(resumeAt - t)
}

// ItemLost implements core.FailureObserver.
func (c *Collector) ItemLost(req core.Request, t float64) {
	c.itemsLost.Inc()
}

// ItemRejected implements core.FailureObserver.
func (c *Collector) ItemRejected(req core.Request, t float64, timedOut bool) {
	if timedOut {
		c.itemsTimedOut.Inc()
	} else {
		c.itemsRejected.Inc()
	}
	c.dropStart(req)
}

// ItemQueued implements core.FailureObserver.
func (c *Collector) ItemQueued(req core.Request, t float64) {
	c.itemsQueued.Inc()
	c.dropStart(req)
}

// ItemDequeued implements core.FailureObserver: the queue delay is simulated
// time, accumulated in the same order the engine adds Result.QueueDelay.
func (c *Collector) ItemDequeued(req core.Request, queuedAt, t float64) {
	c.itemsDequeued.Inc()
	c.queueDelay.Add(t - queuedAt)
}

// RunScoper is implemented by observers that can mint per-run views of
// themselves. The experiment harness scopes a shared observer through it
// before every simulation, so per-run matching state is never shared between
// concurrent engines while aggregate instruments still accumulate across the
// whole experiment.
type RunScoper interface {
	ForRun() core.Observer
}

var _ RunScoper = (*Collector)(nil)

// ForRun returns a view of the collector for one simulation run. The view
// feeds the same registry instruments as the collector, but keeps its own
// BeforePack→AfterPack matching state: two concurrent runs may carry items
// with identical (ID, SeqNo), and matching them through one shared map would
// cross-pair timestamps between runs (corrupting the placement-latency
// histogram). A view must observe a single simulation at a time; mint one per
// run.
func (c *Collector) ForRun() core.Observer {
	return &RunView{Collector: c, starts: make(map[placeKey]time.Duration)}
}

// RunView is a single-run view of a shared Collector; see ForRun. It
// overrides exactly the methods that touch per-run matching state and
// inherits the pure instrument updates.
type RunView struct {
	*Collector
	mu     sync.Mutex
	starts map[placeKey]time.Duration
}

var (
	_ core.Observer        = (*RunView)(nil)
	_ core.SelectObserver  = (*RunView)(nil)
	_ core.FailureObserver = (*RunView)(nil)
)

// BeforePack implements core.Observer against the view's own matching state.
func (v *RunView) BeforePack(req core.Request, open []*core.Bin) {
	now := v.Collector.clock.Now()
	v.mu.Lock()
	v.starts[placeKey{req.ID, req.SeqNo}] = now
	v.mu.Unlock()
}

// AfterPack implements core.Observer against the view's own matching state.
func (v *RunView) AfterPack(req core.Request, b *core.Bin, opened bool) {
	now := v.Collector.clock.Now()
	v.mu.Lock()
	key := placeKey{req.ID, req.SeqNo}
	if start, ok := v.starts[key]; ok {
		delete(v.starts, key)
		if d := now - start; d >= 0 {
			v.Collector.placementSeconds.Observe(d.Seconds())
		}
	}
	v.mu.Unlock()
	v.Collector.countPlacement(req, opened)
}

func (v *RunView) dropStart(req core.Request) {
	v.mu.Lock()
	delete(v.starts, placeKey{req.ID, req.SeqNo})
	v.mu.Unlock()
}

// ItemRejected implements core.FailureObserver against the view's own state.
func (v *RunView) ItemRejected(req core.Request, t float64, timedOut bool) {
	if timedOut {
		v.Collector.itemsTimedOut.Inc()
	} else {
		v.Collector.itemsRejected.Inc()
	}
	v.dropStart(req)
}

// ItemQueued implements core.FailureObserver against the view's own state.
func (v *RunView) ItemQueued(req core.Request, t float64) {
	v.Collector.itemsQueued.Inc()
	v.dropStart(req)
}
