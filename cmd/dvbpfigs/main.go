// Command dvbpfigs regenerates the paper's illustrative figures as SVG from
// real simulation runs:
//
//	Figure 1 — Move To Front usage periods decomposed into leading and
//	           non-leading intervals (Section 3's decomposition);
//	Figure 2 — First Fit usage periods decomposed into P_i and Q_i
//	           (Section 4's decomposition);
//	Figure 3 — per-bin loads over time on the Theorem 5 adversarial
//	           instance (Section 6's illustration);
//	plus a packing Gantt chart of any instance, the fragmentation
//	head-to-head (DESIGN.md §13): a cost/LB chart across trace models and a
//	markdown table whose ranking flips show the FARB-style trace dependence,
//	and the budgeted-defragmentation study (DESIGN.md §14): a net-of-cost
//	gain chart plus a markdown report of every policy's migrating leg against
//	its irrevocable baseline.
//
// Each figure is an independent shard: -workers renders them in parallel and
// -shard k/m restricts one invocation to a slice of them (shard index =
// figure position above, Gantt last). Every figure re-simulates its own
// policy instance from the seed, so output bytes are identical for any
// worker count or slice partition (DESIGN.md §9).
//
//	dvbpfigs -out figures
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dvbp/internal/adversary"
	"dvbp/internal/analysis"
	"dvbp/internal/core"
	"dvbp/internal/experiments"
	"dvbp/internal/gantt"
	"dvbp/internal/parallel"
	"dvbp/internal/workload"
)

func main() {
	var (
		outDir  = flag.String("out", "figures", "output directory")
		seed    = flag.Int64("seed", 11, "workload seed for figures 1/2")
		n       = flag.Int("n", 24, "items in the random instance for figures 1/2")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		shardF  = flag.String("shard", "", "render only figure slice k/m (0=figure1 1=figure2 2=figure3 3=gantt 4=frag-chart 5=frag-table 6=defrag-chart 7=defrag-table)")
	)
	flag.Parse()
	shard, err := experiments.ParseShardSlice(*shardF)
	if err != nil {
		fatal(err)
	}
	wrote, err := renderFigures(*outDir, *seed, *n, *workers, shard)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d figures to %s/\n", wrote, *outDir)
}

// figure is one renderable output: a filename plus a self-contained renderer
// that re-simulates everything it needs (no shared mutable state, so shards
// can run concurrently and in any order).
type figure struct {
	name   string
	render func() (string, error)
}

// figures lists the renderers in shard-index order. The order is part of the
// -shard contract documented in the command help.
func figures(seed int64, n int) ([]figure, error) {
	l, err := workload.Uniform(workload.UniformConfig{D: 1, N: n, Mu: 8, T: 40, B: 10}, seed)
	if err != nil {
		return nil, err
	}
	return []figure{
		{"figure1_mtf_decomposition.svg", func() (string, error) {
			mtf := core.NewMoveToFront()
			dec := analysis.NewMTFDecomposition(mtf)
			res, err := core.Simulate(l, mtf, core.WithObserver(dec))
			if err != nil {
				return "", err
			}
			if err := dec.Verify(res); err != nil {
				return "", err
			}
			return gantt.MTFFigure1(l, res, dec, gantt.Options{Title: "Figure 1: Move To Front leading/non-leading decomposition"}), nil
		}},
		{"figure2_ff_decomposition.svg", func() (string, error) {
			res, err := core.Simulate(l, core.NewFirstFit())
			if err != nil {
				return "", err
			}
			if err := analysis.VerifyFFDecomposition(res); err != nil {
				return "", err
			}
			return gantt.FFFigure2(l, res, gantt.Options{Title: "Figure 2: First Fit P/Q decomposition"}), nil
		}},
		{"figure3_theorem5_loads.svg", func() (string, error) {
			// Loads on the Theorem 5 instance at t=0.5 (R0 packed), t just
			// after R1 lands, and deep in the long phase.
			in, err := adversary.Theorem5(2, 3, 5)
			if err != nil {
				return "", err
			}
			res, err := core.Simulate(in.List, core.NewFirstFit())
			if err != nil {
				return "", err
			}
			return gantt.LoadFigure3(in.List, res, []float64{0.5, 0.9995, 3}, gantt.Options{
				Title: "Figure 3: bin loads on the Theorem 5 instance (d=2, k=3, mu=5)",
			}), nil
		}},
		{"packing_gantt.svg", func() (string, error) {
			res, err := core.Simulate(l, core.NewMoveToFront())
			if err != nil {
				return "", err
			}
			return gantt.Packing(l, res, gantt.Options{Title: "Move To Front packing", ShowItemIDs: true}), nil
		}},
		{"fragmentation_ranking.svg", func() (string, error) {
			study, err := runFragStudy(seed)
			if err != nil {
				return "", err
			}
			return study.Chart().SVG(), nil
		}},
		{"fragmentation_headtohead.md", func() (string, error) {
			study, err := runFragStudy(seed)
			if err != nil {
				return "", err
			}
			return fragMarkdown(study), nil
		}},
		{"defrag_gain.svg", func() (string, error) {
			study, err := runDefragStudy(seed)
			if err != nil {
				return "", err
			}
			return study.Chart().SVG(), nil
		}},
		{"defrag_study.md", func() (string, error) {
			study, err := runDefragStudy(seed)
			if err != nil {
				return "", err
			}
			return defragMarkdown(study), nil
		}},
	}, nil
}

// runFragStudy runs the fragmentation head-to-head at figure scale. Each
// figure shard re-runs it independently (the figures contract: no shared
// mutable state), with Workers=1 so output bytes do not depend on the outer
// scheduler.
func runFragStudy(seed int64) (*experiments.FragStudy, error) {
	cfg := experiments.DefaultFrag()
	cfg.Instances = 20
	cfg.Seed = seed
	cfg.Workers = 1
	return experiments.RunFrag(cfg)
}

// fragMarkdown renders the head-to-head as a markdown document: one table
// per trace model plus the uniform-vs-azure ranking flips — the FARB-style
// evidence that policy rankings do not transfer between trace models.
func fragMarkdown(study *experiments.FragStudy) string {
	var b strings.Builder
	b.WriteString("# Fragmentation head-to-head\n\n")
	b.WriteString("Mean cost/LB and waste/fragmentation account per policy and trace model\n")
	b.WriteString("(see DESIGN.md §13 for the metric definitions).\n")
	for _, trace := range study.Traces {
		fmt.Fprintf(&b, "\n## %s\n\n%s", trace, study.Table(trace).Markdown())
		fmt.Fprintf(&b, "\nranking: %s\n", strings.Join(study.Ranking(trace), " < "))
	}
	b.WriteString("\n## Ranking flips: uniform vs azure\n\n")
	flips := study.Flips("uniform", "azure", 0.01)
	if len(flips) == 0 {
		b.WriteString("none above the noise gap\n")
		return b.String()
	}
	for _, f := range flips {
		fmt.Fprintf(&b, "- %s beats %s on %s (by %.4f) but loses on %s (by %.4f)\n",
			f.A, f.B, f.TraceA, f.GapA, f.TraceB, f.GapB)
	}
	return b.String()
}

// runDefragStudy runs the budgeted-defragmentation study at figure scale,
// with the same Workers=1 byte-determinism contract as runFragStudy.
func runDefragStudy(seed int64) (*experiments.DefragStudy, error) {
	cfg := experiments.DefaultDefrag()
	cfg.Instances = 8
	cfg.Seed = seed
	cfg.Workers = 1
	return experiments.RunDefrag(cfg)
}

// defragMarkdown renders the defragmentation study as a markdown document:
// one table per trace model plus the improved / net-win policy lists that
// summarise whether the budgeted moves paid for themselves.
func defragMarkdown(study *experiments.DefragStudy) string {
	var b strings.Builder
	b.WriteString("# Budgeted defragmentation\n\n")
	fmt.Fprintf(&b, "Migration: %s. Every policy runs each trace twice — irrevocable\n", study.Migration)
	b.WriteString("baseline vs budgeted consolidation — and the migration cost is reported\n")
	b.WriteString("next to the gains (see DESIGN.md §14 for the model).\n")
	for _, trace := range study.Traces {
		fmt.Fprintf(&b, "\n## %s\n\n%s", trace, study.Table(trace).Markdown())
		fmt.Fprintf(&b, "\nimproved usage-time or stranded·time: %s\n", policyList(study.Improved(trace)))
		fmt.Fprintf(&b, "net wins after paying migration cost: %s\n", policyList(study.NetWins(trace)))
	}
	return b.String()
}

// policyList joins a policy list for prose, spelling out the empty case.
func policyList(names []string) string {
	if len(names) == 0 {
		return "none"
	}
	return strings.Join(names, ", ")
}

// renderFigures renders the selected figure shards into outDir through the
// work-stealing scheduler and returns how many files were written.
func renderFigures(outDir string, seed int64, n, workers int, shard experiments.ShardSlice) (int, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return 0, err
	}
	figs, err := figures(seed, n)
	if err != nil {
		return 0, err
	}
	var sel []int
	for i := range figs {
		if shard.Selects(i) {
			sel = append(sel, i)
		}
	}
	err = parallel.Run(len(sel), func(_ context.Context, j int) error {
		f := figs[sel[j]]
		svg, err := f.render()
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		return os.WriteFile(filepath.Join(outDir, f.name), []byte(svg), 0o644)
	}, parallel.RunOptions{Workers: workers})
	if err != nil {
		return 0, err
	}
	return len(sel), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvbpfigs:", err)
	os.Exit(1)
}
