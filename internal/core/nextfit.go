package core

// NextFit keeps a single designated current bin (|L| = 1, Section 2.2). An
// arriving item is packed into the current bin if it fits; otherwise the
// current bin is released — it stays active until its items depart, but never
// receives another item — and a fresh bin is opened and made current.
//
// Theorem 4 bounds its competitive ratio by 2μd + 1 and Theorem 6 below by
// 2μd.
type NextFit struct {
	currentID int // -1 when no current bin
}

// NewNextFit returns a Next Fit policy.
func NewNextFit() *NextFit { return &NextFit{currentID: -1} }

// Name implements Policy.
func (*NextFit) Name() string { return "NextFit" }

// Reset implements Policy.
func (nf *NextFit) Reset() { nf.currentID = -1 }

// Select implements Policy: only the current bin is ever considered. If the
// item does not fit there (or there is no current bin), Next Fit opens a new
// bin; the old current bin is released by the OnPack hook.
func (nf *NextFit) Select(req Request, open []*Bin) *Bin {
	if nf.currentID < 0 || len(open) == 0 {
		return nil
	}
	// Only a freshly opened bin ever becomes current, so the current bin is
	// the most recently opened bin of the run; if it is still open it is the
	// last element of open (opening order) — no scan needed.
	if b := open[len(open)-1]; b.ID == nf.currentID {
		if b.Fits(req.Size) {
			return b
		}
		return nil
	}
	// Current bin has closed (its items all departed); nothing in L.
	nf.currentID = -1
	return nil
}

// OnPack implements Policy: a freshly opened bin becomes the current bin,
// releasing the previous one.
func (nf *NextFit) OnPack(_ Request, b *Bin, opened bool) {
	if opened {
		nf.currentID = b.ID
	}
}

// OnClose implements Policy.
func (nf *NextFit) OnClose(b *Bin) {
	if b.ID == nf.currentID {
		nf.currentID = -1
	}
}
