package metrics

import (
	"encoding/json"
	"fmt"
	"math"
	"regexp"
	"strconv"
	"strings"
	"sync"
)

// Kind identifies an instrument type in snapshots and expositions.
type Kind string

// The three instrument kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// validName is the Prometheus metric-name grammar.
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

type registered struct {
	name string
	help string
	kind Kind

	counter   *Counter
	gauge     *Gauge
	histogram *Histogram
}

// Registry is an ordered, named set of instruments. Registration order is
// preserved in snapshots so output is deterministic. The zero value is ready
// to use; all methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	byName  map[string]*registered
	ordered []*registered
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) register(name, help string, kind Kind) *registered {
	if !validName.MatchString(name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", name))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.byName == nil {
		r.byName = make(map[string]*registered)
	}
	if m, ok := r.byName[name]; ok {
		if m.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", name, kind, m.kind))
		}
		return m
	}
	m := &registered{name: name, help: help, kind: kind}
	r.byName[name] = m
	r.ordered = append(r.ordered, m)
	return m
}

// Counter registers (or returns the existing) counter with the given name.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, help, KindCounter)
	if m.counter == nil {
		m.counter = &Counter{}
	}
	return m.counter
}

// Gauge registers (or returns the existing) gauge with the given name.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, help, KindGauge)
	if m.gauge == nil {
		m.gauge = &Gauge{}
	}
	return m.gauge
}

// Histogram registers (or returns the existing) histogram with the given
// name and fixed bucket upper bounds. Bounds are ignored when the name is
// already registered.
func (r *Registry) Histogram(name, help string, bounds ...float64) *Histogram {
	m := r.register(name, help, KindHistogram)
	if m.histogram == nil {
		m.histogram = NewHistogram(bounds...)
	}
	return m.histogram
}

// Bucket is one cumulative histogram bucket in a snapshot: Count
// observations were <= UpperBound.
type Bucket struct {
	UpperBound float64 `json:"le"`
	Count      uint64  `json:"count"`
}

// Metric is the frozen state of one instrument.
type Metric struct {
	Name string `json:"name"`
	Help string `json:"help,omitempty"`
	Kind Kind   `json:"kind"`

	// Value holds the counter or gauge reading (unset for histograms).
	Value float64 `json:"value,omitempty"`

	// Count, Sum and Buckets hold histogram state (unset otherwise).
	// Buckets are cumulative; the final bucket is le=+Inf and equals Count.
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time reading of every instrument in a Registry, in
// registration order.
type Snapshot struct {
	Metrics []Metric `json:"metrics"`
}

// Snapshot freezes the current state of all registered instruments.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	regs := append([]*registered(nil), r.ordered...)
	r.mu.Unlock()

	s := Snapshot{Metrics: make([]Metric, 0, len(regs))}
	for _, m := range regs {
		out := Metric{Name: m.name, Help: m.help, Kind: m.kind}
		switch m.kind {
		case KindCounter:
			out.Value = float64(m.counter.Value())
		case KindGauge:
			out.Value = m.gauge.Value()
		case KindHistogram:
			out.Count = m.histogram.Count()
			out.Sum = m.histogram.Sum()
			bounds := m.histogram.Bounds()
			cum := m.histogram.Buckets()
			for i, b := range bounds {
				out.Buckets = append(out.Buckets, Bucket{UpperBound: b, Count: cum[i]})
			}
			out.Buckets = append(out.Buckets, Bucket{UpperBound: inf, Count: cum[len(cum)-1]})
		}
		s.Metrics = append(s.Metrics, out)
	}
	return s
}

// inf is +Inf; JSON cannot encode it, so Bucket marshals it specially below.
var inf = math.Inf(1)

// MarshalJSON encodes the +Inf bound as the string "+Inf" (JSON numbers
// cannot represent infinities).
func (b Bucket) MarshalJSON() ([]byte, error) {
	type plain Bucket
	if b.UpperBound == inf {
		return json.Marshal(struct {
			UpperBound string `json:"le"`
			Count      uint64 `json:"count"`
		}{"+Inf", b.Count})
	}
	return json.Marshal(plain(b))
}

// UnmarshalJSON is the inverse of MarshalJSON: it accepts either a JSON
// number or the string "+Inf" as the bound, so snapshots round-trip.
func (b *Bucket) UnmarshalJSON(data []byte) error {
	var raw struct {
		UpperBound json.RawMessage `json:"le"`
		Count      uint64          `json:"count"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	b.Count = raw.Count
	if string(raw.UpperBound) == `"+Inf"` {
		b.UpperBound = inf
		return nil
	}
	return json.Unmarshal(raw.UpperBound, &b.UpperBound)
}

// Find returns the snapshot entry with the given name.
func (s Snapshot) Find(name string) (Metric, bool) {
	for _, m := range s.Metrics {
		if m.Name == name {
			return m, true
		}
	}
	return Metric{}, false
}

// JSON renders the snapshot as indented JSON.
func (s Snapshot) JSON() string {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		// Snapshot contains only plain data; this cannot happen.
		panic("metrics: " + err.Error())
	}
	return string(b)
}

// Prometheus renders the snapshot in the Prometheus text exposition format
// (version 0.0.4): HELP/TYPE headers, cumulative le-labelled histogram
// buckets, and _sum/_count series.
func (s Snapshot) Prometheus() string {
	var b strings.Builder
	for _, m := range s.Metrics {
		if m.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", m.Name, m.Help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", m.Name, m.Kind)
		switch m.Kind {
		case KindHistogram:
			for _, bk := range m.Buckets {
				le := "+Inf"
				if bk.UpperBound != inf {
					le = formatFloat(bk.UpperBound)
				}
				fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", m.Name, le, bk.Count)
			}
			fmt.Fprintf(&b, "%s_sum %s\n", m.Name, formatFloat(m.Sum))
			fmt.Fprintf(&b, "%s_count %d\n", m.Name, m.Count)
		default:
			fmt.Fprintf(&b, "%s %s\n", m.Name, formatFloat(m.Value))
		}
	}
	return b.String()
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
