package core

import (
	"fmt"
	"math"
	"reflect"
	"strings"
	"testing"

	"dvbp/internal/item"
	"dvbp/internal/vector"
	"dvbp/internal/workload"
)

// panicPlanner fails the run if it is ever consulted: the disabled-migration
// differential attaches it to prove a zero budget configures nothing.
type panicPlanner struct{}

func (panicPlanner) Name() string { return "panic" }
func (panicPlanner) PlanPass(MigrationView, MigrationBudget) ([]MigrationMove, error) {
	panic("core: disabled migration consulted its planner")
}

// nullPlanner plans nothing, counting consultations.
type nullPlanner struct{ consults int }

func (*nullPlanner) Name() string { return "null" }
func (p *nullPlanner) PlanPass(MigrationView, MigrationBudget) ([]MigrationMove, error) {
	p.consults++
	return nil, nil
}

// fixedPlanner emits one fixed plan on its first consultation (the hostile
// planner of the rejection tests), then goes quiet.
type fixedPlanner struct {
	plan []MigrationMove
	err  error
	done bool
}

func (*fixedPlanner) Name() string { return "fixed" }
func (p *fixedPlanner) PlanPass(MigrationView, MigrationBudget) ([]MigrationMove, error) {
	if p.done {
		return nil, nil
	}
	p.done = true
	return p.plan, p.err
}

// testConsolidator is a self-contained drain-emptiest planner for the core
// property wall (the production planners live in internal/migrate, which
// imports core and so cannot be used here). It drains bins in ascending
// L1-load order into the fullest other bins that fit, all-or-nothing per
// source, within the budget.
type testConsolidator struct{}

func (testConsolidator) Name() string { return "test-consolidator" }

func (testConsolidator) PlanPass(view MigrationView, budget MigrationBudget) ([]MigrationMove, error) {
	load := make(map[int][]float64, len(view.Bins))
	for _, b := range view.Bins {
		l := make([]float64, view.Dim)
		for j := range l {
			l[j] = b.LoadAt(j)
		}
		load[b.ID] = l
	}
	sum := func(id int) float64 {
		s := 0.0
		for _, v := range load[id] {
			s += v
		}
		return s
	}
	order := append([]*Bin(nil), view.Bins...)
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && sum(order[j].ID) < sum(order[j-1].ID); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	var moves []MigrationMove
	cost := 0.0
	drained := map[int]bool{}  // fully drained sources: close mid-pass, never targets
	received := map[int]bool{} // got items this pass: no longer drain candidates
	for _, src := range order {
		if drained[src.ID] || received[src.ID] {
			continue
		}
		items := src.ActiveItemIDs()
		if len(items) == 0 {
			continue
		}
		staged := make([]MigrationMove, 0, len(items))
		stagedCost := 0.0
		ok := true
		for _, id := range items {
			size := view.Size(id)
			c := size.SumNorm() * (view.Departure(id) - view.Now)
			if len(moves)+len(staged)+1 > budget.MaxMoves ||
				(budget.MaxCost > 0 && cost+stagedCost+c > budget.MaxCost) {
				ok = false
				break
			}
			best, bestSum := -1, -1.0
			for _, b := range view.Bins {
				if b.ID == src.ID || drained[b.ID] {
					continue
				}
				fits := true
				for j, s := range size {
					if load[b.ID][j]+s > 1 {
						fits = false
						break
					}
				}
				if fits && sum(b.ID) > bestSum {
					best, bestSum = b.ID, sum(b.ID)
				}
			}
			if best < 0 {
				ok = false
				break
			}
			for j, s := range size {
				load[src.ID][j] -= s
				load[best][j] += s
			}
			staged = append(staged, MigrationMove{ItemID: id, From: src.ID, To: best})
			stagedCost += c
		}
		if !ok {
			for i := len(staged) - 1; i >= 0; i-- {
				mv := staged[i]
				size := view.Size(mv.ItemID)
				for j, s := range size {
					load[mv.From][j] += s
					load[mv.To][j] -= s
				}
			}
			continue
		}
		for _, mv := range staged {
			received[mv.To] = true
		}
		drained[src.ID] = true
		moves = append(moves, staged...)
		cost += stagedCost
	}
	return moves, nil
}

// migTraces returns the three trace models the migration wall runs over,
// shrunk to test size. Deterministic in the seed.
func migTraces(t *testing.T, seed int64) []struct {
	Name string
	List *item.List
} {
	t.Helper()
	azure, google := workload.AzureLike(2), workload.GoogleLike(2)
	azure.Horizon, google.Horizon = 25, 25
	ul, err := workload.Uniform(workload.UniformConfig{D: 2, N: 80, Mu: 8, T: 25, B: 20}, seed)
	if err != nil {
		t.Fatalf("uniform trace: %v", err)
	}
	al, err := workload.Datacenter(azure, seed)
	if err != nil {
		t.Fatalf("azure trace: %v", err)
	}
	gl, err := workload.Datacenter(google, seed)
	if err != nil {
		t.Fatalf("google trace: %v", err)
	}
	return []struct {
		Name string
		List *item.List
	}{{"uniform", ul}, {"azure", al}, {"google", gl}}
}

// fragPairList is the canonical consolidation workload (see
// internal/migrate): pairs of a big short-lived and a small long-lived item;
// FirstFit leaves `pairs` quarter-full bins after t=1.5.
func fragPairList(pairs int) *item.List {
	l := item.NewList(2)
	for i := 0; i < pairs; i++ {
		l.Add(0, 1.5, vector.Vector{0.7, 0.7})
		l.Add(0, 100, vector.Vector{0.25, 0.25})
	}
	return l
}

// lockstep runs two engines over the same instance and fails on the first
// divergence in the event streams; it returns both Results. When snapshots
// is true, it additionally requires bit-identical snapshot structures before
// every event.
func lockstep(t *testing.T, label string, l *item.List, pa, pb Policy, optsA, optsB []Option, snapshots bool) (ra, rb *Result) {
	t.Helper()
	ea, err := NewEngine(l, pa, optsA...)
	if err != nil {
		t.Fatalf("%s: NewEngine A: %v", label, err)
	}
	defer ea.Close()
	eb, err := NewEngine(l, pb, optsB...)
	if err != nil {
		t.Fatalf("%s: NewEngine B: %v", label, err)
	}
	defer eb.Close()
	for step := 0; ; step++ {
		if snapshots {
			sa, err := ea.Snapshot()
			if err != nil {
				t.Fatalf("%s: Snapshot A at %d: %v", label, step, err)
			}
			sb, err := eb.Snapshot()
			if err != nil {
				t.Fatalf("%s: Snapshot B at %d: %v", label, step, err)
			}
			if !reflect.DeepEqual(sa, sb) {
				t.Fatalf("%s: snapshots diverged at step %d:\n A %+v\n B %+v", label, step, sa, sb)
			}
		}
		reca, oka, err := ea.Step()
		if err != nil {
			t.Fatalf("%s: Step A at %d: %v", label, step, err)
		}
		recb, okb, err := eb.Step()
		if err != nil {
			t.Fatalf("%s: Step B at %d: %v", label, step, err)
		}
		if oka != okb {
			t.Fatalf("%s: stream lengths diverged at step %d: A ok=%v, B ok=%v", label, step, oka, okb)
		}
		if !oka {
			break
		}
		if reca != recb {
			t.Fatalf("%s: event %d diverged:\n A %+v\n B %+v", label, step, reca, recb)
		}
	}
	ra, err = ea.Finish()
	if err != nil {
		t.Fatalf("%s: Finish A: %v", label, err)
	}
	rb, err = eb.Finish()
	if err != nil {
		t.Fatalf("%s: Finish B: %v", label, err)
	}
	if ga, gb := resultJSON(t, ra), resultJSON(t, rb); ga != gb {
		t.Fatalf("%s: results diverged:\n A %s\n B %s", label, ga, gb)
	}
	return ra, rb
}

// TestMigrationDisabledIdentical: every disabled spelling of WithMigration —
// zero budget, nil planner, zero/negative/NaN period — leaves the engine
// bit-identical to one built without the option: same events, same snapshots
// before every event, same Result. The attached planner panics if consulted.
func TestMigrationDisabledIdentical(t *testing.T) {
	for _, tr := range migTraces(t, 42) {
		for _, name := range PolicyNames() {
			pa, err := NewPolicy(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := NewPolicy(name, 42)
			if err != nil {
				t.Fatal(err)
			}
			lockstep(t, tr.Name+"/"+name, tr.List, pa, pb,
				nil,
				[]Option{WithMigration(panicPlanner{}, 5, MigrationBudget{MaxMoves: 0})},
				true)
		}
	}
	// The remaining disabled spellings, on one policy and trace.
	l := migTraces(t, 43)[0].List
	for i, opt := range []Option{
		WithMigration(nil, 5, MigrationBudget{MaxMoves: 4}),
		WithMigration(panicPlanner{}, 0, MigrationBudget{MaxMoves: 4}),
		WithMigration(panicPlanner{}, -3, MigrationBudget{MaxMoves: 4}),
		WithMigration(panicPlanner{}, math.NaN(), MigrationBudget{MaxMoves: 4}),
		WithMigration(panicPlanner{}, 5, MigrationBudget{MaxMoves: -1}),
	} {
		lockstep(t, fmt.Sprintf("disabled-%d", i), l, NewFirstFit(), NewFirstFit(),
			nil, []Option{opt}, true)
	}
}

// TestMigrationEmptyPlannerIdentical: an enabled planner that always plans
// nothing changes no event and no result, and is actually consulted.
func TestMigrationEmptyPlannerIdentical(t *testing.T) {
	for _, tr := range migTraces(t, 44) {
		for _, name := range PolicyNames() {
			pa, err := NewPolicy(name, 44)
			if err != nil {
				t.Fatal(err)
			}
			pb, err := NewPolicy(name, 44)
			if err != nil {
				t.Fatal(err)
			}
			null := &nullPlanner{}
			// Snapshots differ by design (the migration section tracks the
			// pass counter), so compare events and results only.
			lockstep(t, tr.Name+"/"+name, tr.List, pa, pb,
				nil,
				[]Option{WithMigration(null, 3, MigrationBudget{MaxMoves: 4})},
				false)
			if null.consults == 0 {
				t.Errorf("%s/%s: empty planner was never consulted", tr.Name, name)
			}
		}
	}
}

// migInvariantObs checks every migration callback against the engine's
// contracts: budget compliance per pass, no target overflow beyond the
// engine's Eps tolerance, exact cost accounting, and bit-identical
// accumulator recompute of both touched bins.
type migInvariantObs struct {
	BaseObserver
	t      *testing.T
	sizes  map[int]vector.Vector
	deps   map[int]float64
	budget MigrationBudget

	passT     float64
	passMoves int
	passCost  float64
	total     int
	drains    int
}

func (o *migInvariantObs) ItemMigrated(itemID int, from, to *Bin, at, cost float64, drained bool) {
	o.t.Helper()
	if at != o.passT {
		o.passT, o.passMoves, o.passCost = at, 0, 0
	}
	o.passMoves++
	o.passCost += cost
	o.total++
	if drained {
		o.drains++
	}
	if o.passMoves > o.budget.MaxMoves {
		o.t.Errorf("pass at t=%v exceeded MaxMoves %d", at, o.budget.MaxMoves)
	}
	if o.budget.MaxCost > 0 && o.passCost > o.budget.MaxCost+1e-12 {
		o.t.Errorf("pass at t=%v cost %v exceeded MaxCost %v", at, o.passCost, o.budget.MaxCost)
	}
	size, ok := o.sizes[itemID]
	if !ok {
		o.t.Fatalf("migrated unknown item %d", itemID)
	}
	if want := size.SumNorm() * (o.deps[itemID] - at); cost != want {
		o.t.Errorf("item %d move cost = %v, want exactly %v", itemID, cost, want)
	}
	for j := 0; j < to.Dim(); j++ {
		if to.LoadAt(j) > 1+vector.Eps {
			o.t.Errorf("target bin %d overflows dim %d: load %v", to.ID, j, to.LoadAt(j))
		}
	}
	if drained {
		if from.ActiveItems() != 0 {
			o.t.Errorf("move reported drained but source bin %d still holds %d items", from.ID, from.ActiveItems())
		}
	}
	o.recheckLoads(to)
	o.recheckLoads(from)
}

// recheckLoads rebuilds the bin's load from scratch with fresh accumulators
// over the test-owned sizes; the engine's incrementally-maintained load must
// match bit for bit (vector.Acc state is a pure function of the active
// multiset).
func (o *migInvariantObs) recheckLoads(b *Bin) {
	o.t.Helper()
	for j := 0; j < b.Dim(); j++ {
		var a vector.Acc
		for _, id := range b.ActiveItemIDs() {
			a.Add(o.sizes[id][j])
		}
		if got, want := b.LoadAt(j), a.Round(); got != want {
			o.t.Errorf("bin %d dim %d: engine load %v, from-scratch accumulator %v", b.ID, j, got, want)
		}
	}
}

// TestMigrationInvariants is the property wall: a consolidating planner over
// all policies × the three trace models, with the audit seam (index
// structural validation and load cross-checks after every event) armed and
// the observer above verifying every move.
func TestMigrationInvariants(t *testing.T) {
	budget := MigrationBudget{MaxMoves: 5, MaxCost: 40}
	migrated := 0
	for _, tr := range migTraces(t, 45) {
		for _, name := range PolicyNames() {
			p, err := NewPolicy(name, 45)
			if err != nil {
				t.Fatal(err)
			}
			sizes := make(map[int]vector.Vector, tr.List.Len())
			deps := make(map[int]float64, tr.List.Len())
			for _, it := range tr.List.Items {
				sizes[it.ID] = it.Size
				deps[it.ID] = it.Departure
			}
			obs := &migInvariantObs{t: t, sizes: sizes, deps: deps, budget: budget}
			var audit Audit
			res, err := Simulate(tr.List, p, WithMigration(testConsolidator{}, 4, budget),
				WithObserver(obs), WithAudit(&audit))
			if err != nil {
				t.Fatalf("%s/%s: %v", tr.Name, name, err)
			}
			if res.Migrations != obs.total || res.BinsDrained != obs.drains {
				t.Errorf("%s/%s: result reports %d moves/%d drains, observer saw %d/%d",
					tr.Name, name, res.Migrations, res.BinsDrained, obs.total, obs.drains)
			}
			migrated += obs.total
			// The usage-time objective must still equal the bins' recorded
			// open intervals exactly.
			span := 0.0
			for _, b := range res.Bins {
				span += b.ClosedAt - b.OpenedAt
			}
			if diff := res.Cost - span; diff > 1e-9 || diff < -1e-9 {
				t.Errorf("%s/%s: Cost %v != Σ bin spans %v", tr.Name, name, res.Cost, span)
			}
		}
	}
	if migrated == 0 {
		t.Fatal("property wall exercised zero migrations; workloads are too easy")
	}
}

// TestMigrationEventStream pins the shape of the committed migration events
// and the departure redirection of moved items.
func TestMigrationEventStream(t *testing.T) {
	l := fragPairList(6)
	e, err := NewEngine(l, NewFirstFit(), WithMigration(testConsolidator{}, 2, MigrationBudget{MaxMoves: 16}))
	if err != nil {
		t.Fatal(err)
	}
	recs, res := stepAll(t, e)
	finalBin := map[int]int{}
	var migSeqs []int64
	for _, rec := range recs {
		if rec.Class == EventMigration {
			if rec.Time != 2*float64(int(rec.Time/2)) || rec.Time <= 0 {
				t.Errorf("migration event at t=%v, want positive multiple of period 2", rec.Time)
			}
			if rec.ItemID < 0 || rec.BinID < 0 {
				t.Errorf("migration event %+v lacks item or target bin", rec)
			}
			if rec.Placed || rec.Opened {
				t.Errorf("migration event %+v claims placement flags", rec)
			}
			finalBin[rec.ItemID] = rec.BinID
			migSeqs = append(migSeqs, rec.Seq)
		}
	}
	if len(migSeqs) == 0 {
		t.Fatal("no migration events on the canonical consolidation workload")
	}
	if res.Migrations != len(migSeqs) {
		t.Errorf("Result.Migrations = %d, stream has %d", res.Migrations, len(migSeqs))
	}
	if res.BinsDrained == 0 {
		t.Error("no bins drained")
	}
	if res.MigrationCost <= 0 {
		t.Errorf("MigrationCost = %v, want > 0", res.MigrationCost)
	}
	// Departures of migrated items must report the bin the item actually
	// lives in (the redirect), not the original placement.
	for _, rec := range recs {
		if rec.Class == EventDeparture {
			if want, ok := finalBin[rec.ItemID]; ok && rec.BinID != want {
				t.Errorf("departure of migrated item %d reported bin %d, want %d", rec.ItemID, rec.BinID, want)
			}
		}
	}
	// Seqs are one contiguous stream shared with all other events.
	for i, rec := range recs {
		if rec.Seq != int64(i)+1 {
			t.Fatalf("event %d has Seq %d, want %d", i, rec.Seq, i+1)
		}
	}
	if res.Cost >= 600 {
		t.Errorf("consolidated cost = %v, want < 600 (baseline)", res.Cost)
	}
}

// TestMigrationHostilePlans: structurally invalid plans poison the run with
// a structured error naming the planner — never a panic, never a half-applied
// pass.
func TestMigrationHostilePlans(t *testing.T) {
	cases := []struct {
		name string
		plan []MigrationMove
		err  error
		want string
	}{
		{name: "planner error", err: fmt.Errorf("boom"), want: "boom"},
		{name: "over budget", plan: []MigrationMove{
			{ItemID: 1, From: 0, To: 1}, {ItemID: 3, From: 1, To: 2}, {ItemID: 5, From: 2, To: 3}},
			want: "budget"},
		{name: "duplicate item", plan: []MigrationMove{
			{ItemID: 1, From: 0, To: 1}, {ItemID: 1, From: 1, To: 2}}, want: "both relocate"},
		{name: "self move", plan: []MigrationMove{{ItemID: 1, From: 0, To: 0}}, want: "itself"},
		{name: "unknown source", plan: []MigrationMove{{ItemID: 1, From: 77, To: 1}}, want: "bin"},
		{name: "unknown target", plan: []MigrationMove{{ItemID: 1, From: 0, To: 77}}, want: "bin"},
		{name: "unknown item", plan: []MigrationMove{{ItemID: 999, From: 0, To: 1}}, want: "item"},
		{name: "departed item", plan: []MigrationMove{{ItemID: 0, From: 0, To: 1}}, want: "item"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Simulate(fragPairList(6), NewFirstFit(),
				WithMigration(&fixedPlanner{plan: tc.plan, err: tc.err}, 2, MigrationBudget{MaxMoves: 2}))
			if err == nil {
				t.Fatal("hostile plan accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestMigrationSnapshotRoundTrip: snapshot before every event of a migrating
// run — including boundaries inside a multi-move pass — restore, run out,
// and require the exact reference suffix and result.
func TestMigrationSnapshotRoundTrip(t *testing.T) {
	l := fragPairList(6)
	opts := func() []Option {
		return []Option{WithMigration(testConsolidator{}, 2, MigrationBudget{MaxMoves: 16})}
	}
	ref, err := NewEngine(l, NewFirstFit(), opts()...)
	if err != nil {
		t.Fatal(err)
	}
	refRecs, refRes := stepAll(t, ref)
	wantJSON := resultJSON(t, refRes)
	migs := 0
	for _, rec := range refRecs {
		if rec.Class == EventMigration {
			migs++
		}
	}
	if migs < 2 {
		t.Fatalf("reference run has %d migration events, need a multi-move pass", migs)
	}

	e, err := NewEngine(l, NewFirstFit(), opts()...)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	var snaps []*Snapshot
	for {
		s, err := e.Snapshot()
		if err != nil {
			t.Fatalf("Snapshot: %v", err)
		}
		snaps = append(snaps, s)
		_, ok, err := e.Step()
		if err != nil {
			t.Fatalf("Step: %v", err)
		}
		if !ok {
			break
		}
	}
	sawMidPass := false
	for k, s := range snaps {
		if s.Migration != nil && len(s.Migration.Pending) > 0 {
			sawMidPass = true
		}
		re, err := RestoreEngine(l, NewFirstFit(), s, opts()...)
		if err != nil {
			t.Fatalf("RestoreEngine at %d: %v", k, err)
		}
		recs, res := stepAll(t, re)
		if got, want := len(recs), len(refRecs)-k; got != want {
			t.Fatalf("restore at %d replayed %d events, want %d", k, got, want)
		}
		for i, rec := range recs {
			if rec != refRecs[k+i] {
				t.Fatalf("restore at %d: event %d diverged:\n got %+v\nwant %+v", k, k+i, rec, refRecs[k+i])
			}
		}
		if got := resultJSON(t, res); got != wantJSON {
			t.Fatalf("restore at %d: result diverged", k)
		}
	}
	if !sawMidPass {
		t.Fatal("no snapshot boundary fell inside a migration pass")
	}
	// Restoring with mismatched options must fail loudly, both ways.
	var mid *Snapshot
	for _, s := range snaps {
		if s.Migration != nil && len(s.Migration.Pending) > 0 {
			mid = s
			break
		}
	}
	if _, err := RestoreEngine(l, NewFirstFit(), mid); err == nil {
		t.Error("restored a mid-pass snapshot without WithMigration")
	}
	plain, err := NewEngine(l, NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	s0, err := plain.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	plain.Close()
	if _, err := RestoreEngine(l, NewFirstFit(), s0, opts()...); err == nil {
		t.Error("restored a migration-free snapshot into a migrating engine")
	}
}
