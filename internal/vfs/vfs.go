package vfs

import (
	"errors"
	"io/fs"
)

// File is an open file handle: the write-side subset of *os.File the persist
// layer uses. Reads go through FS.ReadFile (whole-file, like the recovery
// paths), never through handles.
type File interface {
	// Name returns the path the file was opened with.
	Name() string
	// Write appends len(p) bytes at the handle's offset. Short writes return
	// the count written and an error, like io.Writer.
	Write(p []byte) (int, error)
	// Sync forces written contents down to the durable store (fsync).
	Sync() error
	// Truncate resizes the file; the handle offset is unchanged.
	Truncate(size int64) error
	// Seek repositions the handle offset (whence as in io.Seeker).
	Seek(offset int64, whence int) (int64, error)
	// Close releases the handle without syncing.
	Close() error
}

// FS is the filesystem seam: exactly the operations the persistence and
// server layers perform. Implementations must be safe for concurrent use by
// independent files/directories (the server runs one worker per tenant
// directory plus manifest writes from the front end).
type FS interface {
	// OpenFile opens path with os.OpenFile flag semantics (O_RDWR, O_CREATE,
	// O_TRUNC are the combinations used).
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	// CreateTemp creates a new file in dir, with a name built from pattern by
	// replacing the final "*" (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (File, error)
	// ReadFile returns the file's current contents.
	ReadFile(name string) ([]byte, error)
	// ReadDir lists a directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// Stat describes a file.
	Stat(name string) (fs.FileInfo, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes a file.
	Remove(name string) error
	// RemoveAll deletes a tree.
	RemoveAll(path string) error
	// MkdirAll creates a directory and its missing parents.
	MkdirAll(path string, perm fs.FileMode) error
	// SyncDir fsyncs a directory, making creations, renames, and removals of
	// its entries durable.
	SyncDir(dir string) error
}

// ErrCrashed is returned by every Mem operation between a simulated power
// loss and the following Restart. The persist layer classifies it as fatal
// (not retryable): a crashed machine does not retry, it reboots and recovers.
var ErrCrashed = errors.New("vfs: simulated power loss")

// OrOS returns fsys, or the real filesystem when fsys is nil — the default
// every persist entry point applies, so callers that never think about fault
// injection keep working against the disk.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return OS{}
	}
	return fsys
}
