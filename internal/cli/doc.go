// Package cli holds the small conventions shared by every dvbp command-line
// tool, so their behaviour stays consistent as commands accumulate: one exit
// code vocabulary and one fatal-error shape.
package cli
