package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"dvbp/internal/server"
)

// The -serve-load / -serve-verify pair turns dvbpbench into the load driver
// and auditor for cmd/dvbpserver, and doubles as the restart-under-load
// torture harness: -serve-load records every acknowledgement the server
// hands out into a JSON-lines file, keeps retrying through connection
// failures (a SIGKILLed server mid-load) and backpressure (429/503), and
// -serve-verify later replays that file against the (possibly restarted)
// server, requiring every acknowledged placement to still be present and
// identical. See DESIGN.md §12 for the durability contract this audits.

// serveAck is one acknowledged placement as recorded in the acks file.
type serveAck struct {
	Tenant string  `json:"tenant"`
	Item   int     `json:"item"`
	Bin    int     `json:"bin"`
	Time   float64 `json:"time"`
}

// servePolicies cycles tenant policies so the load covers deterministic and
// seeded placement paths alike.
var servePolicies = []string{"FirstFit", "BestFit", "MoveToFront", "RandomFit", "NextFit", "WorstFit"}

// serveClient is the HTTP client for the serve modes: generous per-request
// timeout, no keep-alive surprises across server restarts.
var serveClient = &http.Client{Timeout: 15 * time.Second}

// serveGiveUp bounds how long one logical request retries through connection
// errors and backpressure before the driver declares the server gone.
const serveGiveUp = 60 * time.Second

// runServeLoad creates tenants tenants on the server at base (tolerating
// ones that already exist, so a rerun after a restart continues the same
// run), posts items placements per tenant with monotonically rising
// arrivals, and appends every acknowledgement to acksPath as it lands.
func runServeLoad(base, acksPath string, tenants, items, dim int, seed int64) error {
	if acksPath == "" {
		return fmt.Errorf("-serve-load needs -serve-acks to record acknowledgements")
	}
	base = strings.TrimRight(base, "/")
	if err := waitReady(base, serveGiveUp); err != nil {
		return err
	}

	acks, err := os.OpenFile(acksPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer acks.Close()
	var ackMu sync.Mutex
	record := func(a serveAck) error {
		ackMu.Lock()
		defer ackMu.Unlock()
		line, err := json.Marshal(a)
		if err != nil {
			return err
		}
		_, err = acks.Write(append(line, '\n'))
		return err
	}

	for i := 0; i < tenants; i++ {
		cfg := server.TenantConfig{
			Name:            fmt.Sprintf("load%d", i),
			Dim:             dim,
			Policy:          servePolicies[i%len(servePolicies)],
			Seed:            seed + int64(i),
			CheckpointEvery: 64,
		}
		code, body, err := serveRetry(http.MethodPost, base+"/v1/tenants", cfg)
		if err != nil {
			return fmt.Errorf("creating tenant %s: %w", cfg.Name, err)
		}
		if code != http.StatusCreated && code != http.StatusConflict {
			return fmt.Errorf("creating tenant %s: status %d: %s", cfg.Name, code, body)
		}
	}

	var wg sync.WaitGroup
	errs := make(chan error, tenants)
	var acked int64
	var ackedMu sync.Mutex
	for i := 0; i < tenants; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("load%d", i)
			url := base + "/v1/tenants/" + name + "/place"
			rng := rand.New(rand.NewSource(seed*1009 + int64(i)))
			for j := 0; j < items; j++ {
				arrival := float64(j) / 4
				departure := arrival + 1 + float64(j%7)
				size := make([]float64, dim)
				for d := range size {
					size[d] = 0.05 + 0.4*rng.Float64()
				}
				req := map[string]any{"arrival": arrival, "departure": departure, "size": size}
				code, body, err := serveRetry(http.MethodPost, url, req)
				if err != nil {
					errs <- fmt.Errorf("%s item %d: %w", name, j, err)
					return
				}
				if code != http.StatusOK {
					errs <- fmt.Errorf("%s item %d: status %d: %s", name, j, code, body)
					return
				}
				var pr server.PlaceResult
				if err := json.Unmarshal(body, &pr); err != nil {
					errs <- fmt.Errorf("%s item %d: decoding ack: %w", name, j, err)
					return
				}
				if err := record(serveAck{Tenant: name, Item: pr.Item, Bin: pr.Bin, Time: pr.Time}); err != nil {
					errs <- fmt.Errorf("recording ack: %w", err)
					return
				}
				ackedMu.Lock()
				acked++
				ackedMu.Unlock()
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return err
	}
	fmt.Printf("serve-load: %d acknowledgements across %d tenants recorded to %s\n", acked, tenants, acksPath)
	return nil
}

// runServeVerify reads the acks file and audits the server at base: every
// acknowledged placement must still exist, on the same bin at the same time.
func runServeVerify(base, acksPath string) error {
	if acksPath == "" {
		return fmt.Errorf("-serve-verify needs the -serve-acks file written by -serve-load")
	}
	base = strings.TrimRight(base, "/")
	if err := waitReady(base, serveGiveUp); err != nil {
		return err
	}

	f, err := os.Open(acksPath)
	if err != nil {
		return err
	}
	defer f.Close()
	byTenant := make(map[string][]serveAck)
	total := 0
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var a serveAck
		if err := json.Unmarshal(sc.Bytes(), &a); err != nil {
			return fmt.Errorf("%s line %d: %w", acksPath, total+1, err)
		}
		byTenant[a.Tenant] = append(byTenant[a.Tenant], a)
		total++
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if total == 0 {
		return fmt.Errorf("%s holds no acknowledgements to verify", acksPath)
	}

	bad := 0
	for tenant, list := range byTenant {
		code, body, err := serveRetry(http.MethodGet, base+"/v1/tenants/"+tenant+"/placements", nil)
		if err != nil {
			return fmt.Errorf("fetching %s placements: %w", tenant, err)
		}
		if code != http.StatusOK {
			return fmt.Errorf("fetching %s placements: status %d: %s", tenant, code, body)
		}
		var got server.PlacementsResult
		if err := json.Unmarshal(body, &got); err != nil {
			return fmt.Errorf("decoding %s placements: %w", tenant, err)
		}
		placed := make(map[int]server.PlacementRecord, len(got.Placements))
		for _, p := range got.Placements {
			placed[p.Item] = p
		}
		for _, a := range list {
			p, ok := placed[a.Item]
			switch {
			case !ok:
				fmt.Fprintf(os.Stderr, "serve-verify: %s item %d: acknowledged but MISSING after restart\n", tenant, a.Item)
				bad++
			case p.Bin != a.Bin || p.Time != a.Time:
				fmt.Fprintf(os.Stderr, "serve-verify: %s item %d: acknowledged bin=%d time=%g, server now says bin=%d time=%g\n",
					tenant, a.Item, a.Bin, a.Time, p.Bin, p.Time)
				bad++
			}
		}
	}
	if bad > 0 {
		return fmt.Errorf("%d of %d acknowledged placements lost or changed", bad, total)
	}
	fmt.Printf("serve-verify: all %d acknowledged placements across %d tenants intact\n", total, len(byTenant))
	return nil
}

// waitReady polls /readyz until the server answers 200, tolerating the
// connection errors a restarting server produces.
func waitReady(base string, budget time.Duration) error {
	deadline := time.Now().Add(budget)
	for {
		resp, err := serveClient.Get(base + "/readyz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server at %s not ready: %w", base, err)
			}
			return fmt.Errorf("server at %s not ready", base)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

// serveRetry performs one logical request, retrying through transport
// errors (the server is down or mid-restart) and backpressure statuses
// (429 queue_full, 503 draining/deadline) until serveGiveUp expires.
// Any other status is returned to the caller to judge.
func serveRetry(method, url string, body any) (int, []byte, error) {
	var payload []byte
	if body != nil {
		var err error
		if payload, err = json.Marshal(body); err != nil {
			return 0, nil, err
		}
	}
	deadline := time.Now().Add(serveGiveUp)
	for {
		req, err := http.NewRequest(method, url, bytes.NewReader(payload))
		if err != nil {
			return 0, nil, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, rerr := serveClient.Do(req)
		if rerr == nil {
			data, derr := io.ReadAll(resp.Body)
			resp.Body.Close()
			if derr == nil && resp.StatusCode != http.StatusTooManyRequests &&
				resp.StatusCode != http.StatusServiceUnavailable {
				return resp.StatusCode, data, nil
			}
		}
		if time.Now().After(deadline) {
			if rerr != nil {
				return 0, nil, fmt.Errorf("giving up after %s: %w", serveGiveUp, rerr)
			}
			return 0, nil, fmt.Errorf("giving up after %s of backpressure from %s", serveGiveUp, url)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
