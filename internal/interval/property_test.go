package interval

import (
	"math/rand"
	"testing"
)

// The property tests below generate interval sets with endpoints on the grid
// {k/4 : 0 <= k <= 400}. Quarter-steps are exact binary fractions and every
// partial sum stays far below 2^53, so all the measures involved are exact in
// float64 and the properties can be asserted with ==, not tolerances.

const gridStep = 0.25
const gridCells = 400

func randomGridSet(rng *rand.Rand, n int) Set {
	s := make(Set, 0, n)
	for i := 0; i < n; i++ {
		a := rng.Intn(gridCells + 1)
		b := rng.Intn(gridCells + 1)
		if a > b {
			a, b = b, a
		}
		s = append(s, New(float64(a)*gridStep, float64(b)*gridStep))
	}
	return s
}

// oracleSpan measures the union by brute force: count grid cells whose
// midpoint lies in some interval. With grid-aligned endpoints this equals the
// union measure exactly.
func oracleSpan(s Set) float64 {
	covered := 0
	for c := 0; c < gridCells; c++ {
		mid := (float64(c) + 0.5) * gridStep
		if s.Contains(mid) {
			covered++
		}
	}
	return float64(covered) * gridStep
}

func TestSpanAgreesWithPointSamplingOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 500; trial++ {
		s := randomGridSet(rng, rng.Intn(12))
		if got, want := s.Span(), oracleSpan(s); got != want {
			t.Fatalf("trial %d: Span = %v, oracle = %v (set %v)", trial, got, want, s)
		}
	}
}

func TestSpanIsOrderIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		s := randomGridSet(rng, 2+rng.Intn(10))
		want := s.Span()
		for shuffle := 0; shuffle < 5; shuffle++ {
			perm := append(Set(nil), s...)
			rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
			if got := perm.Span(); got != want {
				t.Fatalf("trial %d: Span changed under permutation: %v vs %v", trial, got, want)
			}
		}
	}
}

func TestSpanIsMonotoneUnderSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		s := randomGridSet(rng, rng.Intn(10))
		bigger := append(append(Set(nil), s...), randomGridSet(rng, 1+rng.Intn(4))...)
		if s.Span() > bigger.Span() {
			t.Fatalf("trial %d: Span(s)=%v > Span(superset)=%v", trial, s.Span(), bigger.Span())
		}
		// Adding an already-covered interval must not change the measure.
		if len(s) > 0 {
			dup := append(append(Set(nil), s...), s[rng.Intn(len(s))])
			if dup.Span() != s.Span() {
				t.Fatalf("trial %d: duplicate member changed Span: %v vs %v", trial, dup.Span(), s.Span())
			}
		}
	}
}

// TestMergeIsCanonical pins Merge's normal form: disjoint, non-abutting,
// sorted, measure-preserving — for any input order.
func TestMergeIsCanonical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 200; trial++ {
		s := randomGridSet(rng, rng.Intn(12))
		m := s.Merge()
		for i, iv := range m {
			if iv.Empty() {
				t.Fatalf("trial %d: merged set contains empty interval %v", trial, iv)
			}
			if i > 0 && !(m[i-1].Hi < iv.Lo) {
				t.Fatalf("trial %d: merged intervals not disjoint/sorted: %v then %v", trial, m[i-1], iv)
			}
		}
		if m.Span() != s.Span() {
			t.Fatalf("trial %d: Merge changed the measure: %v vs %v", trial, m.Span(), s.Span())
		}
		// Union unchanged: every cell midpoint agrees.
		for c := 0; c < gridCells; c++ {
			mid := (float64(c) + 0.5) * gridStep
			if s.Contains(mid) != m.Contains(mid) {
				t.Fatalf("trial %d: Merge changed membership at %v", trial, mid)
			}
		}
	}
}
