package migrate

import (
	"errors"
	"strings"
	"testing"

	"dvbp/internal/core"
)

// twoBinState is a well-formed d=2 state: bin 0 holds items 0 (0.25) and
// 1 (0.25), bin 1 holds item 2 (0.5), bin 2 is empty.
func twoBinState() ClusterState {
	return ClusterState{
		Dim: 2,
		Load: map[int][]float64{
			0: {0.5, 0.5},
			1: {0.5, 0.5},
			2: {0, 0},
		},
		Size: map[int][]float64{
			0: {0.25, 0.25},
			1: {0.25, 0.25},
			2: {0.5, 0.5},
		},
		BinOf: map[int]int{0: 0, 1: 0, 2: 1},
	}
}

func TestValidatePlanAccepts(t *testing.T) {
	st := twoBinState()
	budget := core.MigrationBudget{MaxMoves: 4}
	plans := [][]core.MigrationMove{
		nil,
		{},
		{{ItemID: 0, From: 0, To: 1}},
		// Landing exactly at capacity 1 is legal.
		{{ItemID: 2, From: 1, To: 0}},
		{{ItemID: 0, From: 0, To: 2}, {ItemID: 1, From: 0, To: 2}},
		// Chained feasibility: item 2 vacates bin 1, then item 0 and 1 use
		// the space item 2 freed plus bin 1's own headroom.
		{{ItemID: 2, From: 1, To: 2}, {ItemID: 0, From: 0, To: 1}, {ItemID: 1, From: 0, To: 1}},
	}
	for i, plan := range plans {
		if err := ValidatePlan(st, plan, budget, nil); err != nil {
			t.Errorf("plan %d: unexpected rejection: %v", i, err)
		}
	}
}

func TestValidatePlanRejects(t *testing.T) {
	budget := core.MigrationBudget{MaxMoves: 4}
	costOne := func(int) float64 { return 1 }
	cases := []struct {
		name   string
		state  func() ClusterState
		plan   []core.MigrationMove
		budget core.MigrationBudget
		costOf func(int) float64
		move   int // expected PlanError.Move
		want   string
	}{
		{
			name:  "bad dimension",
			state: func() ClusterState { return ClusterState{Dim: 0} },
			move:  -1, want: "dimension",
		},
		{
			name: "load dim mismatch",
			state: func() ClusterState {
				st := twoBinState()
				st.Load[0] = []float64{0.5}
				return st
			},
			move: -1, want: "load has 1 dims",
		},
		{
			name: "non-finite load",
			state: func() ClusterState {
				st := twoBinState()
				st.Load[0] = []float64{0.5, -0.1}
				return st
			},
			move: -1, want: "finite vector",
		},
		{
			name: "orphan item",
			state: func() ClusterState {
				st := twoBinState()
				delete(st.BinOf, 2)
				return st
			},
			move: -1, want: "no bin",
		},
		{
			name: "item in unknown bin",
			state: func() ClusterState {
				st := twoBinState()
				st.BinOf[2] = 99
				return st
			},
			move: -1, want: "unknown bin",
		},
		{
			name: "bin membership without size",
			state: func() ClusterState {
				st := twoBinState()
				delete(st.Size, 2)
				return st
			},
			move: -1, want: "no size",
		},
		{
			name:  "non-empty plan with zero budget",
			state: twoBinState,
			plan:  []core.MigrationMove{{ItemID: 0, From: 0, To: 1}},
			move:  -1, want: "MaxMoves 0",
		},
		{
			name:   "too many moves",
			state:  twoBinState,
			plan:   []core.MigrationMove{{ItemID: 0, From: 0, To: 1}, {ItemID: 1, From: 0, To: 2}},
			budget: core.MigrationBudget{MaxMoves: 1},
			move:   -1, want: "exceed budget",
		},
		{
			name:  "unknown item",
			state: twoBinState,
			plan:  []core.MigrationMove{{ItemID: 42, From: 0, To: 1}},
			move:  0, want: "unknown item",
		},
		{
			name:  "item moved twice",
			state: twoBinState,
			plan:  []core.MigrationMove{{ItemID: 0, From: 0, To: 2}, {ItemID: 0, From: 2, To: 1}},
			move:  1, want: "moved twice",
		},
		{
			name:  "self move",
			state: twoBinState,
			plan:  []core.MigrationMove{{ItemID: 0, From: 0, To: 0}},
			move:  0, want: "self-move",
		},
		{
			name:  "wrong source bin",
			state: twoBinState,
			plan:  []core.MigrationMove{{ItemID: 2, From: 0, To: 2}},
			move:  0, want: "is in bin 1",
		},
		{
			name:  "unknown target",
			state: twoBinState,
			plan:  []core.MigrationMove{{ItemID: 0, From: 0, To: 7}},
			move:  0, want: "unknown target",
		},
		{
			name: "overflow",
			state: func() ClusterState {
				st := twoBinState()
				st.Load[0] = []float64{0.6, 0.6}
				return st
			},
			plan: []core.MigrationMove{{ItemID: 2, From: 1, To: 0}},
			move: 0, want: "overflows",
		},
		{
			name:   "cost over budget",
			state:  twoBinState,
			plan:   []core.MigrationMove{{ItemID: 0, From: 0, To: 2}, {ItemID: 1, From: 0, To: 2}},
			budget: core.MigrationBudget{MaxMoves: 4, MaxCost: 1.5},
			costOf: costOne,
			move:   1, want: "exceeds budget MaxCost",
		},
		{
			name:   "invalid cost",
			state:  twoBinState,
			plan:   []core.MigrationMove{{ItemID: 0, From: 0, To: 2}},
			costOf: func(int) float64 { return -1 },
			move:   0, want: "invalid migration cost",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			b := tc.budget
			if b.MaxMoves == 0 && tc.name != "non-empty plan with zero budget" {
				b = budget
			}
			err := ValidatePlan(tc.state(), tc.plan, b, tc.costOf)
			var pe *PlanError
			if !errors.As(err, &pe) {
				t.Fatalf("ValidatePlan = %v, want *PlanError", err)
			}
			if pe.Move != tc.move {
				t.Errorf("PlanError.Move = %d, want %d (%v)", pe.Move, tc.move, pe)
			}
			if !strings.Contains(pe.Error(), tc.want) {
				t.Errorf("PlanError %q does not mention %q", pe.Error(), tc.want)
			}
		})
	}
}

// ValidatePlan must leave the caller's state untouched even when it accepts.
func TestValidatePlanPure(t *testing.T) {
	st := twoBinState()
	plan := []core.MigrationMove{{ItemID: 0, From: 0, To: 2}}
	if err := ValidatePlan(st, plan, core.MigrationBudget{MaxMoves: 4}, nil); err != nil {
		t.Fatal(err)
	}
	if st.Load[0][0] != 0.5 || st.Load[2][0] != 0 || st.BinOf[0] != 0 {
		t.Fatalf("ValidatePlan mutated the caller's state: %+v", st)
	}
}

func TestConfig(t *testing.T) {
	var zero Config
	if zero.Enabled() {
		t.Error("zero Config reports enabled")
	}
	if got := zero.String(); got != "" {
		t.Errorf("zero Config.String() = %q, want empty", got)
	}
	if _, err := zero.Option(); err != nil {
		t.Errorf("zero Config.Option() = %v, want nil error", err)
	}

	c := Config{Planner: "drain-emptiest", Period: 2, MaxMoves: 8}
	if !c.Enabled() {
		t.Error("configured Config reports disabled")
	}
	if got, want := c.String(), "drain-emptiest period=2 moves=8"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	c.MaxCost = 1.5
	if got, want := c.String(), "drain-emptiest period=2 moves=8 cost=1.5"; got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if _, err := c.Option(); err != nil {
		t.Errorf("Option() = %v", err)
	}

	c.Planner = "no-such-planner"
	if _, err := c.Option(); err == nil {
		t.Error("Option() accepted an unknown planner")
	}
}

func TestNewPlannerRegistry(t *testing.T) {
	names := PlannerNames()
	if len(names) != 3 {
		t.Fatalf("PlannerNames() = %v, want 3 planners", names)
	}
	for _, name := range names {
		p, err := NewPlanner(name)
		if err != nil {
			t.Fatalf("NewPlanner(%q): %v", name, err)
		}
		if p.Name() != name {
			t.Errorf("NewPlanner(%q).Name() = %q: registry key and planner name drifted", name, p.Name())
		}
	}
	if _, err := NewPlanner("bogus"); err == nil {
		t.Error("NewPlanner accepted an unknown name")
	}
}
