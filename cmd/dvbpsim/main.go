// Command dvbpsim runs one MinUsageTime DVBP simulation and reports the
// packing cost, the Lemma 1 lower bounds and the offline bracket.
//
// Input is either a trace file (-trace, CSV or JSON as produced by
// dvbptrace) or a freshly generated uniform instance (-d/-n/-mu/-T/-B/-seed,
// the paper's Table 2 model).
//
// Examples:
//
//	dvbpsim -d 2 -n 1000 -mu 100 -policy MoveToFront
//	dvbpsim -trace trace.csv -policy ff -bins
//	dvbpsim -d 1 -n 200 -mu 10 -all
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dvbp/internal/check"
	"dvbp/internal/core"
	"dvbp/internal/exactopt"
	"dvbp/internal/faults"
	"dvbp/internal/item"
	"dvbp/internal/lowerbound"
	"dvbp/internal/metrics"
	"dvbp/internal/offline"
	"dvbp/internal/report"
	"dvbp/internal/workload"
)

func main() {
	var (
		tracePath = flag.String("trace", "", "trace file (.csv or .json); overrides the generator flags")
		d         = flag.Int("d", 2, "dimensions (generator)")
		n         = flag.Int("n", 1000, "items (generator)")
		mu        = flag.Int("mu", 10, "max item duration (generator)")
		horizon   = flag.Int("T", 1000, "span (generator)")
		binSize   = flag.Int("B", 100, "bin capacity granularity (generator)")
		seed      = flag.Int64("seed", 1, "generator / RandomFit seed")
		policy    = flag.String("policy", "MoveToFront", "packing policy (see -list)")
		all       = flag.Bool("all", false, "run all seven standard policies")
		bins      = flag.Bool("bins", false, "print per-bin usage records")
		bracket   = flag.Bool("bracket", true, "compute the offline OPT bracket (O(n^2); disable for huge traces)")
		exact     = flag.Bool("exact", false, "compute exact OPT (exponential; only for small peak concurrency)")
		checkFlag = flag.Bool("check", false, "re-validate every result from first principles (internal/check)")
		metricsF  = flag.Bool("metrics", false, "collect engine metrics per policy and dump JSON + Prometheus snapshots")
		list      = flag.Bool("list", false, "list policy names and exit")
	)
	var spec faults.Spec
	spec.Register(flag.CommandLine, "")
	flag.Parse()

	plan, err := spec.Plan()
	if err != nil {
		fatal(err)
	}

	if *list {
		fmt.Println(strings.Join(core.PolicyNames(), "\n"))
		return
	}

	if plan.Active() && *checkFlag {
		fatal(fmt.Errorf("-check validates the fault-free model; it cannot be combined with fault/admission flags"))
	}

	l, err := loadInstance(*tracePath, *d, *n, *mu, *horizon, *binSize, *seed)
	if err != nil {
		fatal(err)
	}

	lb := lowerbound.Compute(l)
	fmt.Printf("instance: d=%d items=%d span=%.4g mu=%.4g\n", l.Dim, l.Len(), l.Span(), l.Mu())
	if plan.Active() {
		fmt.Printf("faults: %s\n", plan)
	}
	fmt.Printf("lower bounds on OPT: integral=%.4f utilization=%.4f span=%.4f\n",
		lb.Integral, lb.Utilization, lb.Span)
	var upCost float64
	if *bracket {
		up, err := offline.BestUpperEstimate(l)
		if err != nil {
			fatal(err)
		}
		upCost = up.Cost
		fmt.Printf("offline upper estimate: %.4f (%s)  =>  OPT in [%.4f, %.4f]\n",
			up.Cost, up.Algorithm, lb.Best(), up.Cost)
	}

	denom := lb.Best() // ratio denominator: exact OPT when available
	if *exact {
		if peak := exactopt.PeakActive(l); peak > exactopt.DefaultMaxActive {
			fatal(fmt.Errorf("exact OPT infeasible: peak concurrency %d exceeds %d", peak, exactopt.DefaultMaxActive))
		}
		opt, err := exactopt.Opt(l, exactopt.Options{})
		if err != nil {
			fatal(err)
		}
		denom = opt
		fmt.Printf("exact OPT: %.4f (ratios below are TRUE competitive ratios)\n", opt)
	}

	var policies []core.Policy
	if *all {
		policies = core.StandardPolicies(*seed)
	} else {
		p, err := core.NewPolicy(*policy, *seed)
		if err != nil {
			fatal(err)
		}
		policies = []core.Policy{p}
	}

	ratioHeader := "cost/LB"
	if *exact {
		ratioHeader = "cost/OPT"
	}
	headers := []string{"policy", "cost", ratioHeader, "bins", "peak bins"}
	if plan.Active() {
		headers = append(headers, "crashes", "evict", "retry", "lost", "reject", "timeout")
	}
	t := &report.Table{Headers: headers}
	collectors := make(map[string]*metrics.Collector)
	for _, p := range policies {
		opts := plan.Options()
		if *metricsF {
			col := metrics.NewCollector()
			collectors[p.Name()] = col
			opts = append(opts, core.WithObserver(col))
		}
		res, err := core.Simulate(l, p, opts...)
		if err != nil {
			fatal(err)
		}
		if *checkFlag {
			if err := check.Result(l, res); err != nil {
				fatal(fmt.Errorf("%s failed validation: %w", p.Name(), err))
			}
		}
		row := []string{p.Name(), fmt.Sprintf("%.4f", res.Cost), fmt.Sprintf("%.4f", res.Cost/denom),
			fmt.Sprintf("%d", res.BinsOpened), fmt.Sprintf("%d", res.MaxConcurrentBins)}
		if plan.Active() {
			row = append(row, fmt.Sprintf("%d", res.Crashes), fmt.Sprintf("%d", res.Evictions),
				fmt.Sprintf("%d", res.Retries), fmt.Sprintf("%d", res.ItemsLost),
				fmt.Sprintf("%d", res.Rejected), fmt.Sprintf("%d", res.TimedOut))
		}
		t.AddRow(row...)
		if *bins {
			for _, b := range res.Bins {
				mark := ""
				if b.Crashed {
					mark = " CRASHED"
				}
				fmt.Printf("  %s bin %d: [%.4g, %.4g) usage=%.4g items=%d%s\n",
					p.Name(), b.BinID, b.OpenedAt, b.ClosedAt, b.Usage(), b.Packed, mark)
			}
		}
	}
	fmt.Print(t.Render())
	if *bracket && upCost > 0 && !*exact {
		fmt.Printf("note: cost/LB overstates the true competitive ratio by at most %.2fx (bracket looseness)\n",
			upCost/lb.Best())
	}
	if *metricsF {
		for _, p := range policies {
			label := ""
			if len(policies) > 1 {
				label = p.Name()
			}
			if err := report.WriteMetrics(os.Stdout, label, collectors[p.Name()].Snapshot()); err != nil {
				fatal(err)
			}
		}
	}
}

func loadInstance(path string, d, n, mu, horizon, binSize int, seed int64) (*item.List, error) {
	if path == "" {
		return workload.Uniform(workload.UniformConfig{D: d, N: n, Mu: mu, T: horizon, B: binSize}, seed)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		return workload.ReadJSON(f)
	}
	return workload.ReadCSV(f)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvbpsim:", err)
	os.Exit(1)
}
