package workload

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadCSV: arbitrary input must never panic; valid round-trips must be
// accepted.
func FuzzReadCSV(f *testing.F) {
	f.Add("id,arrival,departure,s0\n0,0,1,0.5\n")
	f.Add("id,arrival,departure,s0,s1\n0,0,2,0.5,0.25\n1,1,3,0.1,0.9\n")
	f.Add("garbage")
	f.Add("id,arrival,departure,s0\n0,1,0,0.5\n") // inverted interval
	f.Add("")
	f.Fuzz(func(t *testing.T, s string) {
		l, err := ReadCSV(strings.NewReader(s))
		if err != nil {
			return
		}
		// Anything accepted must be a valid instance and must round-trip.
		if err := l.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
		var buf bytes.Buffer
		if err := WriteCSV(&buf, l); err != nil {
			t.Fatalf("write-back failed: %v", err)
		}
		l2, err := ReadCSV(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if l2.Len() != l.Len() || l2.Dim != l.Dim {
			t.Fatalf("round trip changed shape")
		}
	})
}

// FuzzReadJSON mirrors FuzzReadCSV for the JSON format.
func FuzzReadJSON(f *testing.F) {
	f.Add(`{"dim":1,"items":[{"id":0,"arrival":0,"departure":1,"size":[0.5]}]}`)
	f.Add(`{"dim":2,"items":[]}`)
	f.Add(`{`)
	f.Fuzz(func(t *testing.T, s string) {
		l, err := ReadJSON(strings.NewReader(s))
		if err != nil {
			return
		}
		if err := l.Validate(); err != nil {
			t.Fatalf("accepted invalid trace: %v", err)
		}
	})
}
