package clairvoyant

import (
	"fmt"
	"math"

	"dvbp/internal/core"
)

// DurationClassFit is a clairvoyant policy with per-duration-class bins.
type DurationClassFit struct {
	// MinDuration scales the classes: class(r) = ⌈log₂(ℓ(r)/MinDuration)⌉.
	// Zero means 1.0 (the paper's normalisation).
	MinDuration float64

	classOfBin map[int]int
}

// NewDurationClassFit returns a DurationClassFit with the given minimum
// duration (0 -> 1.0).
func NewDurationClassFit(minDuration float64) *DurationClassFit {
	return &DurationClassFit{MinDuration: minDuration}
}

// Name implements core.Policy.
func (*DurationClassFit) Name() string { return "DurationClassFit" }

// Reset implements core.Policy.
func (p *DurationClassFit) Reset() { p.classOfBin = make(map[int]int) }

func (p *DurationClassFit) class(req core.Request) int {
	if !req.HasDeparture {
		panic("clairvoyant: DurationClassFit needs core.WithClairvoyance()")
	}
	minD := p.MinDuration
	if minD <= 0 {
		minD = 1
	}
	dur := req.Departure - req.Arrival
	if dur <= minD {
		return 0
	}
	return int(math.Ceil(math.Log2(dur / minD)))
}

// Select implements core.Policy: first fit among same-class bins.
func (p *DurationClassFit) Select(req core.Request, open []*core.Bin) *core.Bin {
	c := p.class(req)
	for _, b := range open {
		if p.classOfBin[b.ID] == c && b.Fits(req.Size) {
			return b
		}
	}
	return nil
}

// OnPack implements core.Policy: a fresh bin adopts the item's class.
func (p *DurationClassFit) OnPack(req core.Request, b *core.Bin, opened bool) {
	if opened {
		p.classOfBin[b.ID] = p.class(req)
	}
}

// OnClose implements core.Policy.
func (p *DurationClassFit) OnClose(b *core.Bin) { delete(p.classOfBin, b.ID) }

// AlignedBestFit is a clairvoyant policy that minimises departure
// misalignment.
type AlignedBestFit struct {
	maxDep map[int]float64 // bin ID -> latest known departure among its items
}

// NewAlignedBestFit returns an AlignedBestFit policy.
func NewAlignedBestFit() *AlignedBestFit { return &AlignedBestFit{} }

// Name implements core.Policy.
func (*AlignedBestFit) Name() string { return "AlignedBestFit" }

// Reset implements core.Policy.
func (p *AlignedBestFit) Reset() { p.maxDep = make(map[int]float64) }

// Select implements core.Policy: among fitting bins, minimise
// |projectedClose(bin) − e(r)|; break ties toward the more loaded bin, then
// the earlier bin.
func (p *AlignedBestFit) Select(req core.Request, open []*core.Bin) *core.Bin {
	if !req.HasDeparture {
		panic("clairvoyant: AlignedBestFit needs core.WithClairvoyance()")
	}
	var best *core.Bin
	bestMis := math.Inf(1)
	bestLoad := -1.0
	for _, b := range open {
		if !b.Fits(req.Size) {
			continue
		}
		mis := math.Abs(p.maxDep[b.ID] - req.Departure)
		load := b.LoadNorm()
		if mis < bestMis-1e-12 || (math.Abs(mis-bestMis) <= 1e-12 && load > bestLoad+1e-12) {
			best, bestMis, bestLoad = b, mis, load
		}
	}
	return best
}

// OnPack implements core.Policy.
func (p *AlignedBestFit) OnPack(req core.Request, b *core.Bin, opened bool) {
	if !req.HasDeparture {
		panic("clairvoyant: AlignedBestFit needs core.WithClairvoyance()")
	}
	if req.Departure > p.maxDep[b.ID] {
		p.maxDep[b.ID] = req.Departure
	}
}

// OnClose implements core.Policy.
func (p *AlignedBestFit) OnClose(b *core.Bin) { delete(p.maxDep, b.ID) }

// New constructs a clairvoyant policy by name ("DurationClassFit",
// "WindowedClassFit" or "AlignedBestFit", case-sensitive).
func New(name string) (core.Policy, error) {
	switch name {
	case "DurationClassFit":
		return NewDurationClassFit(0), nil
	case "WindowedClassFit":
		return NewWindowedClassFit(0), nil
	case "AlignedBestFit":
		return NewAlignedBestFit(), nil
	}
	return nil, fmt.Errorf("clairvoyant: unknown policy %q", name)
}
