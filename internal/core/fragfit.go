package core

import (
	"math"

	"dvbp/internal/vector"
)

// This file implements the fragmentation-aware policy family (DESIGN.md §13).
// All four policies score fitting bins with an item-dependent function, so —
// unlike Best/Worst Fit — the score cannot be a static index sort key. They
// still ride the §11 indexed store: the engine keys them by opening order
// (binIDKey) and SelectIndexed enumerates the *feasible* bins in ascending ID
// order via AscendFeasible — exactly the order and the feasibility predicate
// the linear scan uses — computing the same score with the same float64
// operations on the same *Bin. Decisions are therefore bit-identical to
// Select by construction; the gain over the scan is the index's feasibility
// pruning (residual-bucket mask + exact minLoad), not a sub-linear argmin.

// FragmentationAwareNames returns the canonical names of the four
// fragmentation-aware policies in presentation order (the order the
// head-to-head experiment reports them).
func FragmentationAwareNames() []string {
	return []string{"DotProduct", "L2Residual", "FARB", "AdaptiveHybrid"}
}

// FragmentationAwarePolicies returns fresh instances of the four
// fragmentation-aware policies, in FragmentationAwareNames order. The seed
// is accepted for signature symmetry with StandardPolicies; none of the four
// draws randomness.
func FragmentationAwarePolicies(seed int64) []Policy {
	ns := FragmentationAwareNames()
	ps := make([]Policy, 0, len(ns))
	for _, n := range ns {
		p, err := NewPolicy(n, seed)
		if err != nil {
			panic("core: registry inconsistency: " + err.Error())
		}
		ps = append(ps, p)
	}
	return ps
}

// scoredSelect is the shared linear Select of the scored family: the fitting
// bin with the strictly smallest score wins, ties break toward the
// earliest-opened bin (ascending scan + strict '<', the loadfit.go rule).
func scoredSelect(req Request, open []*Bin, score func(Request, *Bin) float64) *Bin {
	var best *Bin
	bestScore := math.Inf(1)
	for _, b := range open {
		if !b.Fits(req.Size) {
			continue
		}
		if s := score(req, b); s < bestScore {
			best, bestScore = b, s
		}
	}
	return best
}

// scoredSelectIndexed is the indexed twin of scoredSelect: AscendFeasible
// yields the fitting bins in ascending binIDKey order — the linear scan's
// probe order — so the argmin and its tie-break are reproduced exactly.
func scoredSelectIndexed(req Request, ix *BinIndex, score func(Request, *Bin) float64) *Bin {
	var best *Bin
	bestScore := math.Inf(1)
	ix.AscendFeasible(req.Size, func(b *Bin) bool {
		if s := score(req, b); s < bestScore {
			best, bestScore = b, s
		}
		return true
	})
	return best
}

// DotProduct packs an arriving item into the fitting bin whose residual
// capacity vector is best aligned with the item: argmax Σ_j residual_j·size_j
// (Panigrahy et al.'s dot-product heuristic, per the FARB snippets). Large
// demands steer toward bins with matching headroom, which keeps residuals
// balanced across dimensions.
type DotProduct struct{}

// NewDotProduct returns a DotProduct policy.
func NewDotProduct() *DotProduct { return &DotProduct{} }

// Name implements Policy.
func (*DotProduct) Name() string { return "DotProduct" }

// Reset implements Policy.
func (*DotProduct) Reset() {}

// policyIsStateless marks DotProduct for the §10 snapshot codec: its Select
// is a pure function of the request and the open set.
func (*DotProduct) policyIsStateless() {}

func dotProductScore(req Request, b *Bin) float64 {
	dot := 0.0
	for j, s := range req.Size {
		dot += (1 - b.load[j]) * s
	}
	return -dot // argmax alignment as argmin score
}

// Select implements Policy: argmax residual·size among fitting bins; ties
// break toward the earliest-opened bin.
func (*DotProduct) Select(req Request, open []*Bin) *Bin {
	return scoredSelect(req, open, dotProductScore)
}

// OnPack implements Policy.
func (*DotProduct) OnPack(Request, *Bin, bool) {}

// OnClose implements Policy.
func (*DotProduct) OnClose(*Bin) {}

// IndexProfile implements IndexedPolicy: keyed by opening order; the score is
// item-dependent, so feasibility pruning is the index's contribution.
func (*DotProduct) IndexProfile() IndexProfile { return IndexProfile{Key: binIDKey} }

// SelectIndexed implements IndexedPolicy.
func (*DotProduct) SelectIndexed(req Request, ix *BinIndex) *Bin {
	return scoredSelectIndexed(req, ix, dotProductScore)
}

// L2Residual packs an arriving item into the fitting bin that minimises the
// Euclidean norm of the post-placement residual, Σ_j (residual_j − size_j)²
// — Best Fit generalised to "leave the least leftover in all dimensions at
// once" rather than under a single load measure.
type L2Residual struct{}

// NewL2Residual returns an L2Residual policy.
func NewL2Residual() *L2Residual { return &L2Residual{} }

// Name implements Policy.
func (*L2Residual) Name() string { return "L2Residual" }

// Reset implements Policy.
func (*L2Residual) Reset() {}

// policyIsStateless marks L2Residual for the §10 snapshot codec.
func (*L2Residual) policyIsStateless() {}

func l2ResidualScore(req Request, b *Bin) float64 {
	// The squared norm has the same argmin as the norm and skips the sqrt;
	// both paths compute the identical expression, so the comparison is
	// bit-identical either way.
	sum := 0.0
	for j, s := range req.Size {
		r := 1 - b.load[j] - s
		sum += r * r
	}
	return sum
}

// Select implements Policy: argmin ‖residual − size‖₂ among fitting bins;
// ties break toward the earliest-opened bin.
func (*L2Residual) Select(req Request, open []*Bin) *Bin {
	return scoredSelect(req, open, l2ResidualScore)
}

// OnPack implements Policy.
func (*L2Residual) OnPack(Request, *Bin, bool) {}

// OnClose implements Policy.
func (*L2Residual) OnClose(*Bin) {}

// IndexProfile implements IndexedPolicy.
func (*L2Residual) IndexProfile() IndexProfile { return IndexProfile{Key: binIDKey} }

// SelectIndexed implements IndexedPolicy.
func (*L2Residual) SelectIndexed(req Request, ix *BinIndex) *Bin {
	return scoredSelectIndexed(req, ix, l2ResidualScore)
}

// FARB weights for the composite score. Balance dominates (stranding comes
// from dimensional spread), fullness closes bins sooner (the usage-time
// objective), and the L2 term breaks residual-shape ties.
const (
	farbBalanceWeight  = 0.5
	farbFullnessWeight = 0.3
	farbL2Weight       = 0.2
)

// FARB packs an arriving item by a fragmentation-aware balance/fullness
// score in the style of the FARB heuristic (SNIPPETS.md): for the
// post-placement residual r' it minimises
//
//	0.5·(max_j r'_j − min_j r'_j)  +  0.3·mean_j r'_j  +  0.2·‖r'‖₂/√d
//
// i.e. prefer placements that leave residuals dimensionally balanced (low
// spread — nothing stranded), full (low mean residual), and small in norm.
// Every term lies in [0, 1], so the weights express the intended trade-off
// directly.
type FARB struct{}

// NewFARB returns a FARB policy.
func NewFARB() *FARB { return &FARB{} }

// Name implements Policy.
func (*FARB) Name() string { return "FARB" }

// Reset implements Policy.
func (*FARB) Reset() {}

// policyIsStateless marks FARB for the §10 snapshot codec.
func (*FARB) policyIsStateless() {}

func farbScore(req Request, b *Bin) float64 {
	d := len(req.Size)
	minR, maxR := math.Inf(1), math.Inf(-1)
	sum, sumSq := 0.0, 0.0
	for j, s := range req.Size {
		r := 1 - b.load[j] - s
		if r < minR {
			minR = r
		}
		if r > maxR {
			maxR = r
		}
		sum += r
		sumSq += r * r
	}
	fd := float64(d)
	return farbBalanceWeight*(maxR-minR) +
		farbFullnessWeight*(sum/fd) +
		farbL2Weight*math.Sqrt(sumSq/fd)
}

// Select implements Policy: argmin FARB score among fitting bins; ties break
// toward the earliest-opened bin.
func (*FARB) Select(req Request, open []*Bin) *Bin {
	return scoredSelect(req, open, farbScore)
}

// OnPack implements Policy.
func (*FARB) OnPack(Request, *Bin, bool) {}

// OnClose implements Policy.
func (*FARB) OnClose(*Bin) {}

// IndexProfile implements IndexedPolicy.
func (*FARB) IndexProfile() IndexProfile { return IndexProfile{Key: binIDKey} }

// SelectIndexed implements IndexedPolicy.
func (*FARB) SelectIndexed(req Request, ix *BinIndex) *Bin {
	return scoredSelectIndexed(req, ix, farbScore)
}

// AdaptiveHybrid regime thresholds (see mode): per-bin dimensional load
// spread above hybridImbalance triggers rebalancing; mean fullness above
// hybridHighUtil triggers tight packing.
const (
	hybridImbalance = 0.12
	hybridHighUtil  = 0.65
)

// AdaptiveHybrid switches scoring policy on live cluster state, in the
// spirit of FARB's adaptive mode (SNIPPETS.md): when the cluster's
// per-dimension total loads have drifted apart (stranding risk) it scores
// with FARB to rebalance; when the cluster is uniformly full it scores with
// Best Fit (L∞) to pack tight and release bins; otherwise it scores with
// DotProduct to keep placements aligned. The regime statistics are computed
// with the exact superaccumulator (vector.Acc) over the current open-bin
// loads, so the linear path (fresh sum over open) and the indexed path (the
// store's incrementally maintained TotalLoad) observe bit-identical totals
// and always pick the same regime.
//
// The struct's fields are Select-local scratch, not run state: every
// decision recomputes them from the engine's open set, so the policy is
// semantically stateless (pure function of request + open set) and snapshots
// need no codec. The concurrent-reuse guard protects the scratch.
type AdaptiveHybrid struct {
	acc []vector.Acc  // scratch: exact per-dimension total-load accumulators
	tot vector.Vector // scratch: rounded totals
}

// NewAdaptiveHybrid returns an AdaptiveHybrid policy.
func NewAdaptiveHybrid() *AdaptiveHybrid { return &AdaptiveHybrid{} }

// Name implements Policy.
func (*AdaptiveHybrid) Name() string { return "AdaptiveHybrid" }

// Reset implements Policy.
func (ah *AdaptiveHybrid) Reset() {
	ah.acc = ah.acc[:0]
	ah.tot = ah.tot[:0]
}

// policyIsStateless marks AdaptiveHybrid for the §10 snapshot codec: its
// fields are per-decision scratch, recomputed from the open set.
func (*AdaptiveHybrid) policyIsStateless() {}

const (
	hybridModeDot = iota
	hybridModeFARB
	hybridModeBest
)

// mode picks the scoring regime from the number of open bins and their exact
// per-dimension total load.
func (*AdaptiveHybrid) mode(n int, tot vector.Vector) int {
	d := len(tot)
	minT, maxT := math.Inf(1), math.Inf(-1)
	sum := 0.0
	for _, t := range tot {
		if t < minT {
			minT = t
		}
		if t > maxT {
			maxT = t
		}
		sum += t
	}
	fn := float64(n)
	if d >= 2 && (maxT-minT)/fn > hybridImbalance {
		return hybridModeFARB
	}
	if sum/(fn*float64(d)) > hybridHighUtil {
		return hybridModeBest
	}
	return hybridModeDot
}

func hybridScore(mode int) func(Request, *Bin) float64 {
	switch mode {
	case hybridModeFARB:
		return farbScore
	case hybridModeBest:
		// Best Fit under MaxLoad as an argmin score; same float64 value the
		// linear BestFit evaluates, negated.
		return func(_ Request, b *Bin) float64 { return -b.load.MaxNorm() }
	default:
		return dotProductScore
	}
}

// totals writes the exact per-dimension sum of the open bins' loads into the
// scratch vector. The load values are the bins' rounded superaccumulator
// outputs, and Acc is order-independent, so any enumeration of the same bin
// multiset yields bit-identical totals.
func (ah *AdaptiveHybrid) totals(d int, open []*Bin) vector.Vector {
	if cap(ah.acc) < d {
		ah.acc = make([]vector.Acc, d)
		ah.tot = vector.New(d)
	}
	ah.acc = ah.acc[:d]
	ah.tot = ah.tot[:d]
	for j := range ah.acc {
		ah.acc[j].Reset()
	}
	for _, b := range open {
		for j, l := range b.load {
			ah.acc[j].Add(l)
		}
	}
	for j := range ah.acc {
		ah.tot[j] = ah.acc[j].Round()
	}
	return ah.tot
}

// Select implements Policy: pick the regime from exact cluster totals, then
// run the regime's scored scan; ties break toward the earliest-opened bin.
func (ah *AdaptiveHybrid) Select(req Request, open []*Bin) *Bin {
	if len(open) == 0 {
		return nil
	}
	tot := ah.totals(len(req.Size), open)
	return scoredSelect(req, open, hybridScore(ah.mode(len(open), tot)))
}

// OnPack implements Policy.
func (*AdaptiveHybrid) OnPack(Request, *Bin, bool) {}

// OnClose implements Policy.
func (*AdaptiveHybrid) OnClose(*Bin) {}

// IndexProfile implements IndexedPolicy.
func (*AdaptiveHybrid) IndexProfile() IndexProfile { return IndexProfile{Key: binIDKey} }

// SelectIndexed implements IndexedPolicy: the store's TotalLoad is the same
// exact Acc sum over the same bin multiset the linear path computes, so the
// regime choice — and then the AscendFeasible argmin — is bit-identical.
func (ah *AdaptiveHybrid) SelectIndexed(req Request, ix *BinIndex) *Bin {
	n := ix.Len()
	if n == 0 {
		return nil
	}
	d := len(req.Size)
	if cap(ah.tot) < d {
		ah.tot = vector.New(d)
	}
	ah.tot = ah.tot[:d]
	ix.TotalLoad(ah.tot)
	return scoredSelectIndexed(req, ix, hybridScore(ah.mode(n, ah.tot)))
}
