package main

import (
	"bytes"
	"errors"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

var simArgs = []string{
	"-d", "2", "-n", "200", "-mu", "8", "-T", "150", "-B", "100", "-seed", "5",
	"-policy", "MoveToFront",
	"-mtbf", "25", "-fault-seed", "3", "-retry", "fixed:1",
	"-max-servers", "12", "-queue-deadline", "4",
}

func buildSim(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dvbpsim")
	if out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

func runSim(t *testing.T, bin string, args ...string) (string, string, int) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	cmd := exec.Command(bin, args...)
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		var ee *exec.ExitError
		if !errors.As(err, &ee) {
			t.Fatalf("%s %v: %v", bin, args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

// TestSimCheckpointRestore: checkpointing must not change the output, an
// expired -timeout must exit 2 leaving the directory resumable, and -restore
// must complete the run with stdout byte-identical to an uninterrupted one.
func TestSimCheckpointRestore(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	bin := buildSim(t)

	wantOut, _, code := runSim(t, bin, simArgs...)
	if code != 0 {
		t.Fatalf("reference run exited %d", code)
	}

	ckpt := t.TempDir()
	out, _, code := runSim(t, bin, append(append([]string{}, simArgs...), "-checkpoint-dir", ckpt)...)
	if code != 0 {
		t.Fatalf("checkpointed run exited %d", code)
	}
	if out != wantOut {
		t.Fatalf("checkpointed run output differs:\n--- plain ---\n%s\n--- checkpointed ---\n%s", wantOut, out)
	}

	// Interrupt a fresh checkpointed run via -timeout, then resume it.
	dir := t.TempDir()
	_, stderr, code := runSim(t, bin, append(append([]string{}, simArgs...),
		"-checkpoint-dir", dir, "-checkpoint-every", "32", "-timeout", "1ns")...)
	if code != 2 {
		t.Fatalf("timed-out run exited %d, want 2\nstderr: %s", code, stderr)
	}
	out, stderr, code = runSim(t, bin, append(append([]string{}, simArgs...), "-checkpoint-dir", dir, "-restore")...)
	if code != 0 {
		t.Fatalf("restore exited %d\nstderr: %s", code, stderr)
	}
	if out != wantOut {
		t.Fatalf("restored run diverged:\n--- want ---\n%s\n--- got ---\n%s", wantOut, out)
	}
	if !strings.Contains(stderr, "resumed at event") {
		t.Errorf("restore stderr lacks the resume notice: %s", stderr)
	}
}

// TestSimTimeoutExitCode: the shared exit-code convention — timeout is 2,
// plain failures are 1 — without any checkpointing involved.
func TestSimTimeoutExitCode(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the go tool")
	}
	bin := buildSim(t)
	_, stderr, code := runSim(t, bin, append(append([]string{}, simArgs...), "-timeout", "1ns")...)
	if code != 2 {
		t.Fatalf("timeout exited %d, want 2\nstderr: %s", code, stderr)
	}
	if _, _, code := runSim(t, bin, "-policy", "NoSuchPolicy"); code != 1 {
		t.Fatalf("bad policy exited %d, want 1", code)
	}
	if _, _, code := runSim(t, bin, append(append([]string{}, simArgs...), "-all", "-checkpoint-dir", t.TempDir())...); code != 1 {
		t.Fatalf("-all with -checkpoint-dir exited %d, want 1", code)
	}
	if _, _, code := runSim(t, bin, append(append([]string{}, simArgs...), "-restore")...); code != 1 {
		t.Fatalf("-restore without -checkpoint-dir exited %d, want 1", code)
	}
}
