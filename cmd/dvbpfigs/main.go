// Command dvbpfigs regenerates the paper's illustrative figures as SVG from
// real simulation runs:
//
//	Figure 1 — Move To Front usage periods decomposed into leading and
//	           non-leading intervals (Section 3's decomposition);
//	Figure 2 — First Fit usage periods decomposed into P_i and Q_i
//	           (Section 4's decomposition);
//	Figure 3 — per-bin loads over time on the Theorem 5 adversarial
//	           instance (Section 6's illustration);
//	plus a packing Gantt chart of any instance.
//
// Each figure is an independent shard: -workers renders them in parallel and
// -shard k/m restricts one invocation to a slice of them (shard index =
// figure position above, Gantt last). Every figure re-simulates its own
// policy instance from the seed, so output bytes are identical for any
// worker count or slice partition (DESIGN.md §9).
//
//	dvbpfigs -out figures
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"dvbp/internal/adversary"
	"dvbp/internal/analysis"
	"dvbp/internal/core"
	"dvbp/internal/experiments"
	"dvbp/internal/gantt"
	"dvbp/internal/parallel"
	"dvbp/internal/workload"
)

func main() {
	var (
		outDir  = flag.String("out", "figures", "output directory")
		seed    = flag.Int64("seed", 11, "workload seed for figures 1/2")
		n       = flag.Int("n", 24, "items in the random instance for figures 1/2")
		workers = flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		shardF  = flag.String("shard", "", "render only figure slice k/m (0=figure1 1=figure2 2=figure3 3=gantt)")
	)
	flag.Parse()
	shard, err := experiments.ParseShardSlice(*shardF)
	if err != nil {
		fatal(err)
	}
	wrote, err := renderFigures(*outDir, *seed, *n, *workers, shard)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %d figures to %s/\n", wrote, *outDir)
}

// figure is one renderable output: a filename plus a self-contained renderer
// that re-simulates everything it needs (no shared mutable state, so shards
// can run concurrently and in any order).
type figure struct {
	name   string
	render func() (string, error)
}

// figures lists the renderers in shard-index order. The order is part of the
// -shard contract documented in the command help.
func figures(seed int64, n int) ([]figure, error) {
	l, err := workload.Uniform(workload.UniformConfig{D: 1, N: n, Mu: 8, T: 40, B: 10}, seed)
	if err != nil {
		return nil, err
	}
	return []figure{
		{"figure1_mtf_decomposition.svg", func() (string, error) {
			mtf := core.NewMoveToFront()
			dec := analysis.NewMTFDecomposition(mtf)
			res, err := core.Simulate(l, mtf, core.WithObserver(dec))
			if err != nil {
				return "", err
			}
			if err := dec.Verify(res); err != nil {
				return "", err
			}
			return gantt.MTFFigure1(l, res, dec, gantt.Options{Title: "Figure 1: Move To Front leading/non-leading decomposition"}), nil
		}},
		{"figure2_ff_decomposition.svg", func() (string, error) {
			res, err := core.Simulate(l, core.NewFirstFit())
			if err != nil {
				return "", err
			}
			if err := analysis.VerifyFFDecomposition(res); err != nil {
				return "", err
			}
			return gantt.FFFigure2(l, res, gantt.Options{Title: "Figure 2: First Fit P/Q decomposition"}), nil
		}},
		{"figure3_theorem5_loads.svg", func() (string, error) {
			// Loads on the Theorem 5 instance at t=0.5 (R0 packed), t just
			// after R1 lands, and deep in the long phase.
			in, err := adversary.Theorem5(2, 3, 5)
			if err != nil {
				return "", err
			}
			res, err := core.Simulate(in.List, core.NewFirstFit())
			if err != nil {
				return "", err
			}
			return gantt.LoadFigure3(in.List, res, []float64{0.5, 0.9995, 3}, gantt.Options{
				Title: "Figure 3: bin loads on the Theorem 5 instance (d=2, k=3, mu=5)",
			}), nil
		}},
		{"packing_gantt.svg", func() (string, error) {
			res, err := core.Simulate(l, core.NewMoveToFront())
			if err != nil {
				return "", err
			}
			return gantt.Packing(l, res, gantt.Options{Title: "Move To Front packing", ShowItemIDs: true}), nil
		}},
	}, nil
}

// renderFigures renders the selected figure shards into outDir through the
// work-stealing scheduler and returns how many files were written.
func renderFigures(outDir string, seed int64, n, workers int, shard experiments.ShardSlice) (int, error) {
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		return 0, err
	}
	figs, err := figures(seed, n)
	if err != nil {
		return 0, err
	}
	var sel []int
	for i := range figs {
		if shard.Selects(i) {
			sel = append(sel, i)
		}
	}
	err = parallel.Run(len(sel), func(_ context.Context, j int) error {
		f := figs[sel[j]]
		svg, err := f.render()
		if err != nil {
			return fmt.Errorf("%s: %w", f.name, err)
		}
		return os.WriteFile(filepath.Join(outDir, f.name), []byte(svg), 0o644)
	}, parallel.RunOptions{Workers: workers})
	if err != nil {
		return 0, err
	}
	return len(sel), nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dvbpfigs:", err)
	os.Exit(1)
}
