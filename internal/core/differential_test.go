package core

import (
	"math"
	"testing"

	"dvbp/internal/interval"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// recomputeCost independently recomputes the MinUsageTime objective from the
// placements alone: group items by bin, take the span of each group's active
// intervals, and sum. This is the definition in equation (1) of the paper,
// evaluated without any of the engine's incremental bookkeeping.
func recomputeCost(l *item.List, res *Result) float64 {
	byBin := make(map[int]interval.Set)
	itemByID := make(map[int]item.Item, l.Len())
	for _, it := range l.Items {
		itemByID[it.ID] = it
	}
	for _, p := range res.Placements {
		it := itemByID[p.ItemID]
		byBin[p.BinID] = append(byBin[p.BinID], it.Interval())
	}
	total := 0.0
	for _, ivs := range byBin {
		total += ivs.Span()
	}
	return total
}

// recheckFeasibility verifies from the placements alone that no bin is ever
// overloaded: for every item, the sum of sizes of co-located items active at
// its arrival (including itself) is within capacity.
func recheckFeasibility(l *item.List, res *Result) bool {
	binOf := make(map[int]int, l.Len())
	for _, p := range res.Placements {
		binOf[p.ItemID] = p.BinID
	}
	for _, it := range l.Items {
		load := vector.New(l.Dim)
		for _, other := range l.Items {
			if binOf[other.ID] == binOf[it.ID] && other.ActiveAt(it.Arrival) {
				load.AddInPlace(other.Size)
			}
		}
		if !load.LeqCapacity() {
			return false
		}
	}
	return true
}

// TestDifferentialCostRecomputation: the engine's incremental cost must match
// the from-scratch recomputation for every policy on many random instances.
func TestDifferentialCostRecomputation(t *testing.T) {
	for seed := int64(100); seed < 110; seed++ {
		l := randomList(seed, 250, 3, 30)
		for _, p := range StandardPolicies(seed) {
			res := mustSimulate(t, l, p)
			want := recomputeCost(l, res)
			if math.Abs(res.Cost-want) > 1e-6 {
				t.Errorf("%s seed=%d: engine cost %v, recomputed %v", p.Name(), seed, res.Cost, want)
			}
		}
	}
}

// TestDifferentialFeasibility: placements are feasible when re-audited from
// first principles.
func TestDifferentialFeasibility(t *testing.T) {
	for seed := int64(200); seed < 205; seed++ {
		l := randomList(seed, 200, 2, 20)
		for _, p := range StandardPolicies(seed) {
			res := mustSimulate(t, l, p)
			if !recheckFeasibility(l, res) {
				t.Errorf("%s seed=%d: infeasible placement detected", p.Name(), seed)
			}
		}
	}
}

// TestDifferentialBinSpansMatchPlacements: each recorded BinUsage interval
// must equal the hull of its items' intervals — open at first arrival, close
// at last departure.
func TestDifferentialBinSpansMatchPlacements(t *testing.T) {
	l := randomList(300, 250, 2, 15)
	itemByID := make(map[int]item.Item, l.Len())
	for _, it := range l.Items {
		itemByID[it.ID] = it
	}
	for _, p := range StandardPolicies(300) {
		res := mustSimulate(t, l, p)
		firstArr := make(map[int]float64)
		lastDep := make(map[int]float64)
		for _, pl := range res.Placements {
			it := itemByID[pl.ItemID]
			if v, ok := firstArr[pl.BinID]; !ok || it.Arrival < v {
				firstArr[pl.BinID] = it.Arrival
			}
			if it.Departure > lastDep[pl.BinID] {
				lastDep[pl.BinID] = it.Departure
			}
		}
		for _, b := range res.Bins {
			if math.Abs(b.OpenedAt-firstArr[b.BinID]) > 1e-9 {
				t.Errorf("%s bin %d: OpenedAt %v, first arrival %v", p.Name(), b.BinID, b.OpenedAt, firstArr[b.BinID])
			}
			if math.Abs(b.ClosedAt-lastDep[b.BinID]) > 1e-9 {
				t.Errorf("%s bin %d: ClosedAt %v, last departure %v", p.Name(), b.BinID, b.ClosedAt, lastDep[b.BinID])
			}
		}
	}
}

// TestDifferentialBinNeverIdleMidLife: because closed bins are never reused
// and bins close the moment they empty, every bin's usage interval must be
// fully covered by its items' active intervals (no idle gaps inside a bin's
// recorded lifetime).
func TestDifferentialBinNeverIdleMidLife(t *testing.T) {
	l := randomList(400, 250, 2, 15)
	itemByID := make(map[int]item.Item, l.Len())
	for _, it := range l.Items {
		itemByID[it.ID] = it
	}
	for _, p := range StandardPolicies(400) {
		res := mustSimulate(t, l, p)
		binIvs := make(map[int]interval.Set)
		for _, pl := range res.Placements {
			binIvs[pl.BinID] = append(binIvs[pl.BinID], itemByID[pl.ItemID].Interval())
		}
		for _, b := range res.Bins {
			if !binIvs[b.BinID].Covers(interval.New(b.OpenedAt, b.ClosedAt)) {
				t.Errorf("%s bin %d: idle gap inside [%v,%v)", p.Name(), b.BinID, b.OpenedAt, b.ClosedAt)
			}
		}
	}
}
