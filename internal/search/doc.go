// Package search looks for empirically bad instances: a randomised
// hill-climber over small DVBP instances that maximises a policy's
// cost / exact-OPT ratio.
//
// The Section 6 constructions prove lower bounds analytically; this package
// complements them by *searching* the instance space, which (a) provides
// machine-found witnesses whose certified ratios can be compared with the
// hand-crafted ones, and (b) probes the gap between the lower and upper
// bounds that the paper's Section 8 leaves open. Ratios are exact: instances
// are kept small enough for internal/exactopt.
//
// The search is deterministic in its configuration and seed.
package search
