package main

// -benchjson: convert `go test -bench` text output into the machine-readable
// BENCH_core.json perf baseline. Kept inside dvbpbench (rather than a new
// command) so the experiment harness remains the single benchmarking entry
// point; `make bench-json` is the canonical caller.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// BenchReport is the BENCH_core.json document. Baseline, when present, holds
// the pre-change numbers the current run is compared against, so a single
// artefact records the before/after pair.
type BenchReport struct {
	Schema     string       `json:"schema"`
	Goos       string       `json:"goos,omitempty"`
	Goarch     string       `json:"goarch,omitempty"`
	Pkg        string       `json:"pkg,omitempty"`
	CPU        string       `json:"cpu,omitempty"`
	Benchmarks []BenchEntry `json:"benchmarks"`
	Baseline   *BenchReport `json:"baseline,omitempty"`
}

// BenchEntry aggregates every `-count` repetition of one benchmark. Names are
// benchstat-comparable (the -<GOMAXPROCS> suffix is stripped, as benchstat
// does); per-op values are means across repetitions.
type BenchEntry struct {
	Name       string             `json:"name"`
	Runs       int                `json:"runs"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     float64            `json:"b_per_op,omitempty"`
	AllocsOp   float64            `json:"allocs_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// parseBenchOutput parses `go test -bench` text (the format benchstat reads)
// into a BenchReport, averaging repeated runs of the same benchmark.
func parseBenchOutput(r io.Reader) (*BenchReport, error) {
	rep := &BenchReport{Schema: "dvbp-bench/v1"}
	type agg struct {
		runs  int
		iters int64
		sums  map[string]float64 // unit -> summed value
	}
	byName := make(map[string]*agg)
	var order []string

	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
			continue
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
			continue
		case strings.HasPrefix(line, "pkg:"):
			rep.Pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
			continue
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		fields := strings.Fields(line)
		// Name, iterations, then (value, unit) pairs.
		if len(fields) < 4 || len(fields)%2 != 0 {
			continue
		}
		name := fields[0]
		// Strip the trailing -<GOMAXPROCS> the testing package appends.
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		a := byName[name]
		if a == nil {
			a = &agg{sums: make(map[string]float64)}
			byName[name] = a
			order = append(order, name)
		}
		a.runs++
		a.iters += iters
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchjson: bad value %q in line %q", fields[i], line)
			}
			a.sums[fields[i+1]] += v
		}
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found")
	}

	for _, name := range order {
		a := byName[name]
		e := BenchEntry{Name: name, Runs: a.runs, Iterations: a.iters}
		n := float64(a.runs)
		for unit, sum := range a.sums {
			mean := sum / n
			switch unit {
			case "ns/op":
				e.NsPerOp = mean
			case "B/op":
				e.BPerOp = mean
			case "allocs/op":
				e.AllocsOp = mean
			default:
				if e.Metrics == nil {
					e.Metrics = make(map[string]float64)
				}
				e.Metrics[unit] = mean
			}
		}
		rep.Benchmarks = append(rep.Benchmarks, e)
	}
	sort.Slice(rep.Benchmarks, func(i, j int) bool { return rep.Benchmarks[i].Name < rep.Benchmarks[j].Name })
	return rep, nil
}

func parseBenchFile(path string) (*BenchReport, error) {
	if path == "-" {
		return parseBenchOutput(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rep, err := parseBenchOutput(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return rep, nil
}

// runBenchJSON is the -benchjson mode: convert `in` (a go test -bench text
// dump, "-" = stdin), optionally embed `baselinePath` as the before numbers,
// and write the JSON document to `out` ("" or "-" = stdout).
func runBenchJSON(in, baselinePath, out string) error {
	rep, err := parseBenchFile(in)
	if err != nil {
		return err
	}
	if baselinePath != "" {
		base, err := parseBenchFile(baselinePath)
		if err != nil {
			return err
		}
		base.Baseline = nil // never nest twice
		rep.Baseline = base
	}
	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" || out == "-" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}
