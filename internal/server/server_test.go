package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/metrics"
	"dvbp/internal/vector"
)

// newTestServer opens a store over root and serves it via httptest. The
// returned closer is idempotent; tests that simulate a crash skip it.
func newTestServer(t testing.TB, root string, limits Limits) (*httptest.Server, *Store) {
	t.Helper()
	reg := metrics.NewRegistry()
	store, err := OpenStore(root, limits, reg)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	ts := httptest.NewServer(New(store, reg))
	t.Cleanup(func() {
		ts.Close()
		store.Close()
	})
	return ts, store
}

// newLocalServer serves an already-built Server over httptest and returns
// its base URL. Unlike newTestServer it leaves the store's lifecycle to the
// caller (the crash-recovery tests abandon theirs on purpose).
func newLocalServer(t testing.TB, srv *Server) string {
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts.URL
}

// call issues one JSON request and decodes the JSON response, returning the
// status code.
func call(t testing.TB, method, url string, body any, out any) int {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatalf("request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("%s %s: decoding response: %v", method, url, err)
		}
	}
	return resp.StatusCode
}

func mustStatus(t testing.TB, want, got int, what string) {
	t.Helper()
	if got != want {
		t.Fatalf("%s: status %d, want %d", what, got, want)
	}
}

// streamItem is one scripted place request.
type streamItem struct {
	arrival, departure float64
	size               []float64
}

// stream builds a deterministic d-dimensional arrival stream with
// non-decreasing arrivals, simultaneous bursts, and varied durations.
func stream(d, n int, salt int) []streamItem {
	out := make([]streamItem, n)
	for i := 0; i < n; i++ {
		arr := float64((i + salt) / 3)
		size := make([]float64, d)
		for j := 0; j < d; j++ {
			size[j] = 0.05 + float64((i*(j+3)+salt)%7)*0.1
		}
		out[i] = streamItem{arrival: arr, departure: arr + 1 + float64((i*5+salt)%9), size: size}
	}
	return out
}

// referencePlacements runs the same stream single-threaded through a fresh
// engine and returns its placement records.
func referencePlacements(t testing.TB, cfg TenantConfig, items []streamItem) []PlacementRecord {
	t.Helper()
	l := item.NewList(cfg.Dim)
	for _, it := range items {
		l.Add(it.arrival, it.departure, vector.Vector(it.size))
	}
	p, err := core.NewPolicy(cfg.Policy, cfg.Seed)
	if err != nil {
		t.Fatalf("NewPolicy: %v", err)
	}
	res, err := core.Simulate(l, p)
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	out := make([]PlacementRecord, 0, len(res.Placements))
	for _, pl := range res.Placements {
		out = append(out, PlacementRecord{Item: pl.ItemID, Bin: pl.BinID, Time: pl.Time})
	}
	return out
}

func TestServerTenantLifecycle(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir(), Limits{})
	cfg := TenantConfig{Name: "acme", Dim: 2, Policy: "FirstFit", Seed: 1}

	var created TenantConfig
	mustStatus(t, http.StatusCreated, call(t, "POST", ts.URL+"/v1/tenants", cfg, &created), "create")
	if created != cfg {
		t.Fatalf("created %+v, want %+v", created, cfg)
	}
	mustStatus(t, http.StatusConflict, call(t, "POST", ts.URL+"/v1/tenants", cfg, nil), "duplicate create")

	var listed struct {
		Tenants []TenantConfig `json:"tenants"`
	}
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/v1/tenants", nil, &listed), "list")
	if len(listed.Tenants) != 1 || listed.Tenants[0] != cfg {
		t.Fatalf("listed %+v", listed)
	}

	// Place two items sharing an instant, advance past the first departure,
	// and read the status back.
	var p1, p2 PlaceResult
	mustStatus(t, http.StatusOK, call(t, "POST", ts.URL+"/v1/tenants/acme/place",
		placeBody{Arrival: f(0), Departure: f(2), Size: []float64{0.5, 0.5}}, &p1), "place 1")
	mustStatus(t, http.StatusOK, call(t, "POST", ts.URL+"/v1/tenants/acme/place",
		placeBody{Arrival: f(0), Duration: f(5), Size: []float64{0.5, 0.5}}, &p2), "place 2")
	if p1.Item != 0 || p2.Item != 1 || !p1.Opened || p1.Bin != p2.Bin {
		t.Fatalf("placements: %+v %+v (want both in bin %d)", p1, p2, p1.Bin)
	}

	var adv AdvanceResult
	mustStatus(t, http.StatusOK, call(t, "POST", ts.URL+"/v1/tenants/acme/advance",
		advanceBody{To: 3}, &adv), "advance")
	if adv.Events != 1 || adv.Served != 1 {
		t.Fatalf("advance: %+v, want 1 event, 1 served", adv)
	}

	var st TenantStatus
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/v1/tenants/acme", nil, &st), "status")
	if st.Items != 2 || st.Served != 1 || st.OpenBins != 1 || st.Watermark != 3 {
		t.Fatalf("status: %+v", st)
	}
	if st.Cost != 3 { // one bin open over [0, 3)
		t.Fatalf("cost %g, want 3", st.Cost)
	}

	var pls PlacementsResult
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/v1/tenants/acme/placements?from=1", nil, &pls), "placements")
	if pls.Total != 2 || len(pls.Placements) != 1 || pls.Placements[0].Item != 1 {
		t.Fatalf("placements: %+v", pls)
	}

	mustStatus(t, http.StatusOK, call(t, "DELETE", ts.URL+"/v1/tenants/acme", nil, nil), "delete")
	mustStatus(t, http.StatusNotFound, call(t, "GET", ts.URL+"/v1/tenants/acme", nil, nil), "status after delete")
}

func f(v float64) *float64 { return &v }

// TestServerStrandedAccounting pins the corrected per-dimension stranded
// metric on a mixed-imbalance fleet — the case the legacy dominant-dimension
// heuristic undercounts. Two bins with mirrored loads (0.875, 0.25) and
// (0.25, 0.875) strand 0.625 capacity in EACH dimension (each bin's free
// capacity is locked behind its own binding dimension), while the old
// StrandedBins = OpenBins − max_d OpenLoad[d] formula sees only 0.875 total.
// All sizes are dyadic, so every comparison is exact.
func TestServerStrandedAccounting(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir(), Limits{})
	cfg := TenantConfig{Name: "frag", Dim: 2, Policy: "FirstFit", Seed: 1}
	mustStatus(t, http.StatusCreated, call(t, "POST", ts.URL+"/v1/tenants", cfg, nil), "create")

	var p1, p2 PlaceResult
	mustStatus(t, http.StatusOK, call(t, "POST", ts.URL+"/v1/tenants/frag/place",
		placeBody{Arrival: f(0), Departure: f(10), Size: []float64{0.875, 0.25}}, &p1), "place 1")
	mustStatus(t, http.StatusOK, call(t, "POST", ts.URL+"/v1/tenants/frag/place",
		placeBody{Arrival: f(0), Departure: f(10), Size: []float64{0.25, 0.875}}, &p2), "place 2")
	if p1.Bin == p2.Bin {
		t.Fatalf("items share bin %d; the scenario needs mirrored bins", p1.Bin)
	}

	var st TenantStatus
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/v1/tenants/frag", nil, &st), "status")
	if st.OpenBins != 2 {
		t.Fatalf("open bins %d, want 2", st.OpenBins)
	}
	want := []float64{0.625, 0.625}
	if len(st.StrandedPerDim) != 2 || st.StrandedPerDim[0] != want[0] || st.StrandedPerDim[1] != want[1] {
		t.Errorf("stranded per dim %v, want %v", st.StrandedPerDim, want)
	}
	if st.StrandedCapacity != 1.25 {
		t.Errorf("stranded capacity %v, want 1.25", st.StrandedCapacity)
	}
	// The deprecated heuristic keeps its old (undercounting) value for JSON
	// compatibility: 2 − max(1.125, 1.125).
	if st.StrandedBins != 0.875 {
		t.Errorf("legacy stranded bins %v, want 0.875", st.StrandedBins)
	}
}

// TestServerStrandedChurnConsistent drives a tenant through bin open/close
// churn and a torn-tail crash recovery, then pins every /status fragmentation
// field — open_load, stranded_per_dim, stranded_capacity, and the deprecated
// stranded_bins — against an independent metrics.FragOf recompute on a
// replica engine fed the same items. The two derived fields must also agree
// with each other's definition off the same snapshot, so they cannot drift
// apart under churn. All sizes are dyadic, so every comparison is exact.
func TestServerStrandedChurnConsistent(t *testing.T) {
	root := t.TempDir()
	reg := metrics.NewRegistry()
	store, err := OpenStore(root, Limits{SyncEvery: 1}, reg)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	url := newLocalServer(t, New(store, reg)) // store "crashes" below; no Cleanup-close
	cfg := TenantConfig{Name: "churn", Dim: 2, Policy: "FirstFit", Seed: 1, CheckpointEvery: 4}
	mustStatus(t, http.StatusCreated, call(t, "POST", url+"/v1/tenants", cfg, nil), "create")

	// Two long-lived mirror-imbalanced items anchor two bins; two short-lived
	// ones open and churn a third bin that closes again at the advance.
	pre := []streamItem{
		{arrival: 0, departure: 100, size: []float64{0.875, 0.25}},
		{arrival: 1, departure: 100, size: []float64{0.25, 0.875}},
		{arrival: 2, departure: 5, size: []float64{0.125, 0.0625}},
		{arrival: 3, departure: 6, size: []float64{0.5, 0.5}},
	}
	for i, it := range pre {
		mustStatus(t, http.StatusOK, call(t, "POST", url+"/v1/tenants/churn/place",
			placeBody{Arrival: f(it.arrival), Departure: f(it.departure), Size: it.size}, nil),
			fmt.Sprintf("place %d", i))
	}
	mustStatus(t, http.StatusOK, call(t, "POST", url+"/v1/tenants/churn/advance",
		advanceBody{To: 10}, nil), "advance past the departures")

	// Crash without a drain, tear the persist tails, and recover.
	for _, name := range []string{"wal.dvbp", "ops.dvbp"} {
		fh, err := os.OpenFile(filepath.Join(root, "churn", name), os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
		if _, err := fh.Write([]byte{0x13, 0x37, 0x00}); err != nil {
			t.Fatalf("tear %s: %v", name, err)
		}
		fh.Close()
	}
	reg2 := metrics.NewRegistry()
	store2, err := OpenStore(root, Limits{SyncEvery: 1}, reg2)
	if err != nil {
		t.Fatalf("reopening store: %v", err)
	}
	t.Cleanup(store2.Close)
	url2 := newLocalServer(t, New(store2, reg2))

	post := streamItem{arrival: 12, departure: 50, size: []float64{0.0625, 0.0625}}
	mustStatus(t, http.StatusOK, call(t, "POST", url2+"/v1/tenants/churn/place",
		placeBody{Arrival: f(post.arrival), Departure: f(post.departure), Size: post.size}, nil),
		"place after recovery")
	mustStatus(t, http.StatusOK, call(t, "POST", url2+"/v1/tenants/churn/advance",
		advanceBody{To: 20}, nil), "final advance")

	var st TenantStatus
	mustStatus(t, http.StatusOK, call(t, "GET", url2+"/v1/tenants/churn", nil, &st), "status")

	// Independent recompute: the same items through a fresh engine stepped to
	// the watermark, fragmentation read through metrics.FragOf.
	l := item.NewList(cfg.Dim)
	for _, it := range append(append([]streamItem(nil), pre...), post) {
		l.Add(it.arrival, it.departure, vector.Vector(it.size))
	}
	p, err := core.NewPolicy(cfg.Policy, cfg.Seed)
	if err != nil {
		t.Fatalf("NewPolicy: %v", err)
	}
	e, err := core.NewEngine(l, p)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	for {
		tt, ok := e.PeekTime()
		if !ok || tt > st.Watermark {
			break
		}
		if _, ok, err := e.Step(); err != nil || !ok {
			t.Fatalf("replica step: ok=%v err=%v", ok, err)
		}
	}
	fs := metrics.FragOf(cfg.Dim, e.AppendOpenBins(nil))

	if fs.OpenBins != 2 || fs.Stranded[0] != 0.625 || fs.Stranded[1] != 0.625 {
		t.Fatalf("replica recompute off-script: %+v (want 2 bins stranding 0.625 each dim)", fs)
	}
	if st.OpenBins != fs.OpenBins {
		t.Errorf("open bins %d, FragOf recompute says %d", st.OpenBins, fs.OpenBins)
	}
	var cap_, maxLoad float64
	for d := 0; d < cfg.Dim; d++ {
		if st.OpenLoad[d] != fs.Load[d] {
			t.Errorf("open load dim %d = %v, FragOf recompute says %v", d, st.OpenLoad[d], fs.Load[d])
		}
		if st.StrandedPerDim[d] != fs.Stranded[d] {
			t.Errorf("stranded dim %d = %v, FragOf recompute says %v", d, st.StrandedPerDim[d], fs.Stranded[d])
		}
		cap_ += fs.Stranded[d]
		if fs.Load[d] > maxLoad {
			maxLoad = fs.Load[d]
		}
	}
	if st.StrandedCapacity != cap_ {
		t.Errorf("stranded capacity %v, FragOf recompute says %v", st.StrandedCapacity, cap_)
	}
	if want := float64(fs.OpenBins) - maxLoad; st.StrandedBins != want {
		t.Errorf("legacy stranded bins %v, FragOf recompute says %v", st.StrandedBins, want)
	}
}

func TestServerValidationErrors(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir(), Limits{})
	mustStatus(t, http.StatusCreated, call(t, "POST", ts.URL+"/v1/tenants",
		TenantConfig{Name: "v", Dim: 2, Policy: "bf", Seed: 1}, nil), "create")

	cases := []struct {
		what   string
		status int
		method string
		path   string
		body   any
	}{
		{"bad tenant name", http.StatusBadRequest, "POST", "/v1/tenants", TenantConfig{Name: "no/slashes", Dim: 1, Policy: "ff"}},
		{"bad dim", http.StatusBadRequest, "POST", "/v1/tenants", TenantConfig{Name: "x", Dim: 0, Policy: "ff"}},
		{"bad policy", http.StatusBadRequest, "POST", "/v1/tenants", TenantConfig{Name: "x", Dim: 1, Policy: "nope"}},
		{"unknown field", http.StatusBadRequest, "POST", "/v1/tenants", map[string]any{"name": "x", "dim": 1, "policy": "ff", "bogus": 1}},
		{"unknown tenant place", http.StatusNotFound, "POST", "/v1/tenants/ghost/place", placeBody{Departure: f(1), Size: []float64{0.1, 0.1}}},
		{"wrong dimension", http.StatusBadRequest, "POST", "/v1/tenants/v/place", placeBody{Departure: f(1), Size: []float64{0.1}}},
		{"oversized item", http.StatusBadRequest, "POST", "/v1/tenants/v/place", placeBody{Departure: f(1), Size: []float64{1.5, 0.1}}},
		{"departure and duration", http.StatusBadRequest, "POST", "/v1/tenants/v/place", placeBody{Departure: f(1), Duration: f(1), Size: []float64{0.1, 0.1}}},
		{"no departure", http.StatusBadRequest, "POST", "/v1/tenants/v/place", placeBody{Size: []float64{0.1, 0.1}}},
		{"bad from", http.StatusBadRequest, "GET", "/v1/tenants/v/placements?from=-1", nil},
	}
	for _, c := range cases {
		var e errorBody
		if got := call(t, c.method, ts.URL+c.path, c.body, &e); got != c.status {
			t.Errorf("%s: status %d, want %d", c.what, got, c.status)
		}
		if e.Error == "" || e.Code == "" {
			t.Errorf("%s: unstructured error body %+v", c.what, e)
		}
	}

	// Time-regression is a conflict, not a validation failure.
	mustStatus(t, http.StatusOK, call(t, "POST", ts.URL+"/v1/tenants/v/place",
		placeBody{Arrival: f(10), Departure: f(11), Size: []float64{0.1, 0.1}}, nil), "place at 10")
	var e errorBody
	mustStatus(t, http.StatusConflict, call(t, "POST", ts.URL+"/v1/tenants/v/place",
		placeBody{Arrival: f(9), Departure: f(11), Size: []float64{0.1, 0.1}}, &e), "stale place")
	if e.Code != "stale_arrival" {
		t.Fatalf("stale place code %q", e.Code)
	}
	mustStatus(t, http.StatusConflict, call(t, "POST", ts.URL+"/v1/tenants/v/advance",
		advanceBody{To: 5}, &e), "stale advance")
	if e.Code != "stale_advance" {
		t.Fatalf("stale advance code %q", e.Code)
	}
}

func TestServerMatchesSingleThreadedEngine(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir(), Limits{})
	for _, policy := range []string{"FirstFit", "BestFit", "MoveToFront", "RandomFit"} {
		cfg := TenantConfig{Name: strings.ToLower(policy), Dim: 3, Policy: policy, Seed: 42, CheckpointEvery: 64}
		mustStatus(t, http.StatusCreated, call(t, "POST", ts.URL+"/v1/tenants", cfg, nil), "create")
		items := stream(3, 120, 7)
		for i, it := range items {
			var pr PlaceResult
			mustStatus(t, http.StatusOK, call(t, "POST", ts.URL+"/v1/tenants/"+cfg.Name+"/place",
				placeBody{Arrival: f(it.arrival), Departure: f(it.departure), Size: it.size}, &pr),
				fmt.Sprintf("place %d", i))
			if pr.Item != i {
				t.Fatalf("%s: item %d acked as %d", policy, i, pr.Item)
			}
		}
		var got PlacementsResult
		mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/v1/tenants/"+cfg.Name+"/placements", nil, &got), "placements")
		want := referencePlacements(t, cfg, items)
		if len(got.Placements) != len(want) {
			t.Fatalf("%s: %d placements, want %d", policy, len(got.Placements), len(want))
		}
		for i := range want {
			if got.Placements[i] != want[i] {
				t.Fatalf("%s: placement %d = %+v, want %+v", policy, i, got.Placements[i], want[i])
			}
		}
	}
}

func TestServerHealthReadyMetrics(t *testing.T) {
	ts, store := newTestServer(t, t.TempDir(), Limits{})
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/healthz", nil, nil), "healthz")
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/readyz", nil, nil), "readyz")

	mustStatus(t, http.StatusCreated, call(t, "POST", ts.URL+"/v1/tenants",
		TenantConfig{Name: "m", Dim: 1, Policy: "ff"}, nil), "create")
	mustStatus(t, http.StatusOK, call(t, "POST", ts.URL+"/v1/tenants/m/place",
		placeBody{Departure: f(1), Size: []float64{0.5}}, nil), "place")

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"dvbp_server_requests_total",
		"dvbp_server_request_seconds_bucket",
		"dvbp_server_items_total 1",
		"dvbp_server_tenants 1",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("metrics exposition missing %q", want)
		}
	}
	var snap metrics.Snapshot
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/metrics?format=json", nil, &snap), "metrics json")
	if _, ok := snap.Find("dvbp_server_request_seconds"); !ok {
		t.Fatalf("JSON snapshot missing latency histogram")
	}
	_ = store
}

func TestServerBackpressureBoundedQueue(t *testing.T) {
	// White-box: a tenant whose worker never runs fills its bounded queue
	// and then answers errBusy — nothing blocks, nothing grows.
	reg := metrics.NewRegistry()
	m := newStoreMetrics(reg)
	tn := newTenant(TenantConfig{Name: "q", Dim: 1, Policy: "ff"}, t.TempDir(), Limits{QueueDepth: 4}.withDefaults(), m)
	tn.limits.QueueDepth = 4
	tn.ch = make(chan *request, 4)
	for i := 0; i < 4; i++ {
		if aerr := tn.enqueue(&request{kind: reqStats, reply: make(chan response, 1)}); aerr != nil {
			t.Fatalf("enqueue %d: %v", i, aerr)
		}
	}
	aerr := tn.enqueue(&request{kind: reqStats, reply: make(chan response, 1)})
	if aerr == nil || aerr.Status != http.StatusTooManyRequests {
		t.Fatalf("5th enqueue: %v, want 429", aerr)
	}
	if m.backpressure.Value() != 1 {
		t.Fatalf("backpressure counter %d, want 1", m.backpressure.Value())
	}
	// Closed intake answers draining, never panics.
	tn.mu.Lock()
	tn.closed = true
	tn.mu.Unlock()
	if aerr := tn.enqueue(&request{kind: reqStats}); aerr == nil || aerr.Status != http.StatusServiceUnavailable {
		t.Fatalf("enqueue after close: %v, want 503", aerr)
	}
}

func TestServerDeadlineExpiredInQueue(t *testing.T) {
	ts, _ := newTestServer(t, t.TempDir(), Limits{Deadline: time.Nanosecond})
	mustStatus(t, http.StatusCreated, call(t, "POST", ts.URL+"/v1/tenants",
		TenantConfig{Name: "d", Dim: 1, Policy: "ff"}, nil), "create")
	var e errorBody
	got := call(t, "POST", ts.URL+"/v1/tenants/d/place",
		placeBody{Departure: f(1), Size: []float64{0.5}}, &e)
	if got != http.StatusServiceUnavailable || e.Code != "deadline" {
		t.Fatalf("place with 1ns deadline: status %d code %q, want 503 deadline", got, e.Code)
	}
}

func TestServerDrainRefusesNewWork(t *testing.T) {
	reg := metrics.NewRegistry()
	store, err := OpenStore(t.TempDir(), Limits{}, reg)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	srv := New(store, reg)
	ts := httptest.NewServer(srv)
	defer ts.Close()
	defer store.Close()

	mustStatus(t, http.StatusCreated, call(t, "POST", ts.URL+"/v1/tenants",
		TenantConfig{Name: "g", Dim: 1, Policy: "ff"}, nil), "create")
	mustStatus(t, http.StatusOK, call(t, "POST", ts.URL+"/v1/tenants/g/place",
		placeBody{Departure: f(1), Size: []float64{0.5}}, nil), "place")

	srv.Drain()
	mustStatus(t, http.StatusServiceUnavailable, call(t, "GET", ts.URL+"/readyz", nil, nil), "readyz while draining")
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/healthz", nil, nil), "healthz while draining")
	mustStatus(t, http.StatusServiceUnavailable, call(t, "POST", ts.URL+"/v1/tenants/g/place",
		placeBody{Departure: f(2), Size: []float64{0.5}}, nil), "place while draining")
	mustStatus(t, http.StatusServiceUnavailable, call(t, "POST", ts.URL+"/v1/tenants",
		TenantConfig{Name: "h", Dim: 1, Policy: "ff"}, nil), "create while draining")
	// Reads stay available for the drain window.
	mustStatus(t, http.StatusOK, call(t, "GET", ts.URL+"/v1/tenants/g", nil, nil), "status while draining")
}
