// Package eventq provides a deterministic min-heap event queue used by the
// simulation engines (packing engine, sweep-line lower bounds, cloud
// simulator).
//
// Events are ordered by time; ties are broken by an explicit sequence number
// so that simulations are reproducible regardless of insertion order quirks.
// This matters for the half-open interval convention of the packing engine:
// a departure and an arrival at the same instant must be processed in a fixed
// order (departure first) or costs and bin counts become run-dependent.
//
// The queue is generic over its payload type:
//
//	var q eventq.Queue[string]
//	q.Push(eventq.Event[string]{Time: 2, Seq: 0, Payload: "depart"})
//	q.Push(eventq.Event[string]{Time: 2, Seq: 1, Payload: "arrive"})
//	e, _ := q.Pop() // "depart": equal times resolve by Seq
//
// The zero value of Queue is an empty queue ready to use; it is not safe for
// concurrent use.
package eventq
