package persist

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/faults"
	"dvbp/internal/item"
	"dvbp/internal/metrics"
	"dvbp/internal/workload"
)

// testList builds a deterministic instance shared by the persistence tests.
func testList(t *testing.T, n int) *item.List {
	t.Helper()
	cfg := workload.PaperDefaults(3, 40)
	cfg.N = n
	l, err := workload.Uniform(cfg, 4242)
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	return l
}

// faultOpts is the engine configuration the persistence tests run under:
// crashes, retries, capped bins, and an admission queue, so every event class
// shows up in the WAL.
func faultOpts() []core.Option {
	return []core.Option{
		core.WithFaults(faults.MTBF{Mean: 30, Seed: 7}, faults.Fixed{Wait: 2.5}),
		core.WithMaxBins(4),
		core.WithAdmissionQueue(8),
	}
}

func newTestPolicy(t *testing.T, name string) core.Policy {
	t.Helper()
	p, err := core.NewPolicy(name, 1)
	if err != nil {
		t.Fatalf("NewPolicy(%s): %v", name, err)
	}
	return p
}

func resultJSON(t *testing.T, r *core.Result) string {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatalf("marshal result: %v", err)
	}
	return string(b)
}

// --- record format ---

func TestWriterReadFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.dvbp")
	w, err := Create(nil, path, KindWAL, 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	payloads := [][]byte{[]byte("alpha"), {}, []byte("gamma-gamma"), {0, 1, 2, 255}}
	for _, p := range payloads {
		if err := w.Append(p); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	fd, err := ReadFile(nil, path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if fd.Kind != KindWAL || fd.Torn != nil {
		t.Fatalf("kind=%d torn=%v", fd.Kind, fd.Torn)
	}
	if fd.ValidSize != fd.Size || fd.Size != w.Size() {
		t.Fatalf("sizes: valid=%d size=%d writer=%d", fd.ValidSize, fd.Size, w.Size())
	}
	if len(fd.Records) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(fd.Records), len(payloads))
	}
	for i, p := range payloads {
		if !bytes.Equal(fd.Records[i], p) {
			t.Fatalf("record %d: got %q want %q", i, fd.Records[i], p)
		}
	}
}

func TestReadFileTruncatesDamagedTail(t *testing.T) {
	write := func(t *testing.T) (string, *FileData) {
		path := filepath.Join(t.TempDir(), "dmg.dvbp")
		w, err := Create(nil, path, KindSnapshot, 0)
		if err != nil {
			t.Fatalf("Create: %v", err)
		}
		for _, p := range [][]byte{[]byte("one"), []byte("two"), []byte("three")} {
			if err := w.Append(p); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
		if err := w.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
		fd, err := ReadFile(nil, path)
		if err != nil {
			t.Fatalf("ReadFile: %v", err)
		}
		return path, fd
	}

	cases := []struct {
		name    string
		damage  func(t *testing.T, path string, fd *FileData)
		survive int
		reason  string
	}{
		{
			name: "torn frame",
			damage: func(t *testing.T, path string, fd *FileData) {
				appendBytes(t, path, []byte{1, 2, 3})
			},
			survive: 3, reason: "torn frame",
		},
		{
			name: "torn record",
			damage: func(t *testing.T, path string, fd *FileData) {
				truncate(t, path, fd.Size-2)
			},
			survive: 2, reason: "torn record",
		},
		{
			name: "bit flip in payload",
			damage: func(t *testing.T, path string, fd *FileData) {
				flipByte(t, path, fd.Offsets[1]+frameSize)
			},
			survive: 1, reason: "checksum mismatch",
		},
		{
			name: "absurd length field",
			damage: func(t *testing.T, path string, fd *FileData) {
				writeAt(t, path, fd.Offsets[2], []byte{0xFF, 0xFF, 0xFF, 0xFF})
			},
			survive: 2, reason: "exceeds limit",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path, clean := write(t)
			tc.damage(t, path, clean)
			fd, err := ReadFile(nil, path)
			if err != nil {
				t.Fatalf("damaged records must not be fatal: %v", err)
			}
			if len(fd.Records) != tc.survive {
				t.Fatalf("%d records survived, want %d", len(fd.Records), tc.survive)
			}
			if fd.Torn == nil || !strings.Contains(fd.Torn.Reason, tc.reason) {
				t.Fatalf("Torn = %v, want reason containing %q", fd.Torn, tc.reason)
			}
			if fd.ValidSize >= fd.Size && tc.name != "bit flip in payload" && tc.name != "absurd length field" {
				t.Fatalf("ValidSize %d not below Size %d", fd.ValidSize, fd.Size)
			}
			if fd.Torn.Path != path || fd.Torn.Offset < headerSize {
				t.Fatalf("Torn lacks location: %+v", fd.Torn)
			}
		})
	}
}

func TestReadFileRejectsDamagedHeader(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"short", magic[:4]},
		{"bad magic", bytes.Repeat([]byte{'x'}, headerSize)},
		{"bad version", func() []byte {
			h := appendHeader(nil, KindWAL)
			h[8] = 99
			return h
		}()},
		{"bad kind", func() []byte {
			h := appendHeader(nil, KindWAL)
			h[12] = 77
			return h
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(dir, strings.ReplaceAll(tc.name, " ", "-"))
			if err := os.WriteFile(path, tc.data, 0o644); err != nil {
				t.Fatal(err)
			}
			_, err := ReadFile(nil, path)
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("want *CorruptionError, got %v", err)
			}
			if ce.Path != path {
				t.Fatalf("error lacks path: %+v", ce)
			}
		})
	}
}

func TestCorruptionErrorFormat(t *testing.T) {
	ce := &CorruptionError{Path: "/x/wal.dvbp", Offset: 40, Record: 2, Reason: "checksum mismatch"}
	for _, want := range []string{"/x/wal.dvbp", "40", "checksum mismatch"} {
		if !strings.Contains(ce.Error(), want) {
			t.Fatalf("Error() = %q lacks %q", ce.Error(), want)
		}
	}
}

// --- event record codec ---

func TestEventRecordRoundTrip(t *testing.T) {
	recs := []core.EventRecord{
		{Seq: 1, Class: core.EventArrival, Time: 0, ItemID: 0, BinID: 0, Placed: true, Opened: true},
		{Seq: 2, Class: core.EventDeparture, Time: 3.25, ItemID: 17, BinID: 4},
		{Seq: 3, Class: core.EventCrash, Time: 1e-9, ItemID: -1, BinID: 2},
		{Seq: 4, Class: core.EventRetry, Time: 1e17, ItemID: 1 << 30, BinID: -1, Placed: true},
	}
	var buf []byte
	for _, want := range recs {
		buf = AppendEventRecord(buf[:0], want)
		got, err := DecodeEventRecord(buf)
		if err != nil {
			t.Fatalf("decode %+v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: got %+v want %+v", got, want)
		}
	}
}

func TestDecodeEventRecordRejectsGarbage(t *testing.T) {
	good := AppendEventRecord(nil, core.EventRecord{Seq: 5, Class: core.EventArrival, Time: 1, ItemID: 3, BinID: 2, Placed: true})
	cases := [][]byte{
		nil,
		{250},                    // unknown class
		good[:len(good)-1],       // truncated
		append(good, 9),          // trailing byte
		{0, 2, 0, 0, 0, 0, 0, 0}, // truncated time
		func() []byte { b := append([]byte(nil), good...); b[len(b)-1] = 0xF0; return b }(), // unknown flags
	}
	for i, payload := range cases {
		if _, err := DecodeEventRecord(payload); err == nil {
			t.Fatalf("case %d: garbage decoded cleanly", i)
		} else {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("case %d: want *CorruptionError, got %T", i, err)
			}
		}
	}
}

// --- run meta ---

func TestRunMetaHashAndCheck(t *testing.T) {
	l := testList(t, 30)
	meta := NewRunMeta(l, "FirstFit", 1, "mtbf(30)")
	if err := meta.check(l); err != nil {
		t.Fatalf("check against own list: %v", err)
	}
	other := l.Clone()
	other.Items[7].Size[0] += 1e-9
	if err := meta.check(other); err == nil {
		t.Fatal("check accepted a perturbed workload")
	}
	short := testList(t, 29)
	if err := meta.check(short); err == nil {
		t.Fatal("check accepted a different length")
	}
}

// --- snapshot codec ---

func TestSnapshotCodecRoundTrip(t *testing.T) {
	l := testList(t, 60)
	e, err := core.NewEngine(l, newTestPolicy(t, "MoveToFront"), faultOpts()...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	for i := 0; i < 45; i++ {
		if _, ok, err := e.Step(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	payload := EncodeSnapshot(snap)
	got, err := DecodeSnapshot(payload)
	if err != nil {
		t.Fatalf("DecodeSnapshot: %v", err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatalf("snapshot round trip differs:\n got %+v\nwant %+v", got, snap)
	}
}

func TestDecodeSnapshotRejectsGarbage(t *testing.T) {
	l := testList(t, 40)
	e, err := core.NewEngine(l, newTestPolicy(t, "FirstFit"), faultOpts()...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	for i := 0; i < 25; i++ {
		if _, ok, err := e.Step(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	snap, err := e.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	payload := EncodeSnapshot(snap)
	// Truncations at every prefix and single-byte flips throughout must all
	// come back as structured corruption, never a panic or silent success of
	// an inconsistent snapshot. (A flip may legitimately decode — e.g. in a
	// float — so only the "no panic, structured error" half is asserted for
	// flips; truncations must always fail.)
	for i := 0; i < len(payload); i++ {
		if _, err := DecodeSnapshot(payload[:i]); err == nil {
			t.Fatalf("truncation at %d decoded cleanly", i)
		} else {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("truncation at %d: want *CorruptionError, got %T", i, err)
			}
		}
	}
	for i := 0; i < len(payload); i++ {
		mut := append([]byte(nil), payload...)
		mut[i] ^= 0x40
		if _, err := DecodeSnapshot(mut); err != nil {
			var ce *CorruptionError
			if !errors.As(err, &ce) {
				t.Fatalf("flip at %d: want *CorruptionError, got %T", i, err)
			}
		}
	}
}

// --- session + recovery ---

// referenceRun completes an uninterrupted persisted run and returns its final
// result and metrics JSON.
func referenceRun(t *testing.T, l *item.List, policy string, dir string, every int64) (string, string) {
	t.Helper()
	col := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
	opts := append(faultOpts(), core.WithObserver(col))
	e, err := core.NewEngine(l, newTestPolicy(t, policy), opts...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := Begin(e, NewRunMeta(l, policy, 1, "test"), Config{Dir: dir, Every: every, Aux: []AuxCodec{col.Registry()}})
	if err != nil {
		e.Close()
		t.Fatalf("Begin: %v", err)
	}
	res, err := s.Run()
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	mj, err := col.Registry().MarshalAux()
	if err != nil {
		t.Fatalf("metrics marshal: %v", err)
	}
	return resultJSON(t, res), string(mj)
}

func TestSessionRecoverResume(t *testing.T) {
	l := testList(t, 80)
	const policy = "MoveToFront"
	wantRes, wantMet := referenceRun(t, l, policy, t.TempDir(), 16)

	for _, crashAfter := range []int64{0, 1, 15, 16, 17, 40, 97} {
		dir := t.TempDir()
		col := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
		opts := append(faultOpts(), core.WithObserver(col))
		e, err := core.NewEngine(l, newTestPolicy(t, policy), opts...)
		if err != nil {
			t.Fatalf("NewEngine: %v", err)
		}
		cfg := Config{Dir: dir, Every: 16, SyncEvery: 1, Aux: []AuxCodec{col.Registry()}}
		s, err := Begin(e, NewRunMeta(l, policy, 1, "test"), cfg)
		if err != nil {
			e.Close()
			t.Fatalf("Begin: %v", err)
		}
		for i := int64(0); i < crashAfter; i++ {
			if _, ok, err := s.Step(); err != nil || !ok {
				t.Fatalf("crashAfter=%d step %d: ok=%v err=%v", crashAfter, i, ok, err)
			}
		}
		// Simulate a hard kill: drop the session on the floor, releasing only
		// the descriptor and the policy guard. Nothing is flushed or synced
		// beyond what already happened.
		s.wal.f.Close()
		s.engine.Close()

		rcol := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
		ropts := append(faultOpts(), core.WithObserver(rcol))
		rcfg := cfg
		rcfg.Aux = []AuxCodec{rcol.Registry()}
		rec, err := Recover(l, rcfg, ropts...)
		if err != nil {
			t.Fatalf("crashAfter=%d Recover: %v", crashAfter, err)
		}
		if rec.Session.Logged() != crashAfter {
			t.Fatalf("crashAfter=%d: recovered %d logged events", crashAfter, rec.Session.Logged())
		}
		if want := (crashAfter / 16) * 16; rec.SnapshotSeq != want {
			t.Fatalf("crashAfter=%d: restored from snapshot %d, want %d", crashAfter, rec.SnapshotSeq, want)
		}
		res, err := rec.Session.Run()
		if err != nil {
			t.Fatalf("crashAfter=%d resume: %v", crashAfter, err)
		}
		if got := resultJSON(t, res); got != wantRes {
			t.Fatalf("crashAfter=%d: result diverged\n got %s\nwant %s", crashAfter, got, wantRes)
		}
		mj, err := rcol.Registry().MarshalAux()
		if err != nil {
			t.Fatalf("metrics marshal: %v", err)
		}
		if string(mj) != wantMet {
			t.Fatalf("crashAfter=%d: metrics diverged\n got %s\nwant %s", crashAfter, mj, wantMet)
		}
	}
}

func TestRecoverWithoutSnapshotsReplaysFromScratch(t *testing.T) {
	l := testList(t, 50)
	const policy = "BestFit"
	wantRes, _ := referenceRun(t, l, policy, t.TempDir(), 0)

	dir := t.TempDir()
	e, err := core.NewEngine(l, newTestPolicy(t, policy), faultOpts()...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cfg := Config{Dir: dir, Every: 0, SyncEvery: 1}
	s, err := Begin(e, NewRunMeta(l, policy, 1, "test"), cfg)
	if err != nil {
		e.Close()
		t.Fatalf("Begin: %v", err)
	}
	for i := 0; i < 30; i++ {
		if _, ok, err := s.Step(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	s.wal.f.Close()
	s.engine.Close()

	rec, err := Recover(l, cfg, faultOpts()...)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rec.SnapshotSeq != 0 || rec.SnapshotPath != "" {
		t.Fatalf("scratch recovery used snapshot %q", rec.SnapshotPath)
	}
	if rec.Replayed != 30 {
		t.Fatalf("replayed %d events, want 30", rec.Replayed)
	}
	res, err := rec.Session.Run()
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if got := resultJSON(t, res); got != wantRes {
		t.Fatalf("result diverged\n got %s\nwant %s", got, wantRes)
	}
}

func TestRecoverRejectsWrongInstance(t *testing.T) {
	l := testList(t, 40)
	dir := t.TempDir()
	e, err := core.NewEngine(l, newTestPolicy(t, "FirstFit"), faultOpts()...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cfg := Config{Dir: dir, SyncEvery: 1}
	s, err := Begin(e, NewRunMeta(l, "FirstFit", 1, ""), cfg)
	if err != nil {
		e.Close()
		t.Fatalf("Begin: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	other := l.Clone()
	other.Items[0].Size[1] *= 0.5
	if _, err := Recover(other, cfg, faultOpts()...); err == nil {
		t.Fatal("Recover accepted a different instance")
	}
	if _, err := Recover(l, Config{Dir: filepath.Join(dir, "nope")}, faultOpts()...); err == nil {
		t.Fatal("Recover accepted a missing directory")
	}
}

func TestRecoverMismatchedOptionsDiverges(t *testing.T) {
	l := testList(t, 40)
	dir := t.TempDir()
	e, err := core.NewEngine(l, newTestPolicy(t, "FirstFit"), faultOpts()...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	cfg := Config{Dir: dir, SyncEvery: 1}
	s, err := Begin(e, NewRunMeta(l, "FirstFit", 1, ""), cfg)
	if err != nil {
		e.Close()
		t.Fatalf("Begin: %v", err)
	}
	for i := 0; i < 25; i++ {
		if _, ok, err := s.Step(); err != nil || !ok {
			t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Replay verification must notice that the run is being resumed under a
	// different fault schedule.
	_, err = Recover(l, cfg, core.WithFaults(faults.MTBF{Mean: 5, Seed: 99}, faults.Fixed{Wait: 1}), core.WithMaxBins(4), core.WithAdmissionQueue(8))
	var ce *CorruptionError
	if !errors.As(err, &ce) || !strings.Contains(ce.Reason, "divergence") {
		t.Fatalf("want replay divergence, got %v", err)
	}
}

func TestBeginRejectsBadConfigs(t *testing.T) {
	l := testList(t, 20)
	e, err := core.NewEngine(l, newTestPolicy(t, "FirstFit"), faultOpts()...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	defer e.Close()
	if _, err := Begin(e, NewRunMeta(l, "FirstFit", 1, ""), Config{}); err == nil {
		t.Fatal("Begin accepted an empty directory")
	}
	dup := Config{Dir: t.TempDir(), Aux: []AuxCodec{dummyAux("a"), dummyAux("a")}}
	if _, err := Begin(e, NewRunMeta(l, "FirstFit", 1, ""), dup); err == nil {
		t.Fatal("Begin accepted duplicate aux keys")
	}
	empty := Config{Dir: t.TempDir(), Aux: []AuxCodec{dummyAux("")}}
	if _, err := Begin(e, NewRunMeta(l, "FirstFit", 1, ""), empty); err == nil {
		t.Fatal("Begin accepted an empty aux key")
	}
}

// dummyAux is a minimal AuxCodec for configuration-validation tests.
type dummyAux string

func (d dummyAux) AuxKey() string                 { return string(d) }
func (d dummyAux) MarshalAux() ([]byte, error)    { return []byte("x"), nil }
func (d dummyAux) UnmarshalAux(data []byte) error { return nil }

// --- file damage helpers ---

func appendBytes(t *testing.T, path string, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.Write(b); err != nil {
		t.Fatal(err)
	}
}

func truncate(t *testing.T, path string, size int64) {
	t.Helper()
	if err := os.Truncate(path, size); err != nil {
		t.Fatal(err)
	}
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[off] ^= 0x01
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

func writeAt(t *testing.T, path string, off int64, b []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}
