// Package lowerbound computes the Lemma 1 lower bounds on the optimal
// offline cost OPT(R) of a MinUsageTime DVBP instance.
//
// Computing OPT exactly is NP-hard (it embeds classical bin packing), so the
// paper — and this reproduction — normalise experimental costs by lower
// bounds instead. Lemma 1 gives three:
//
//	(i)   OPT(R) ≥ ∫ ⌈‖s(R,t)‖∞⌉ dt        (the tightest; used in Figure 4)
//	(ii)  OPT(R) ≥ (1/d) Σ_r ‖s(r)‖∞·ℓ(I(r))  (time–space utilisation)
//	(iii) OPT(R) ≥ span(R)
//
// All three are computed exactly by a sweep over the O(n) event points where
// the active set changes; between consecutive event points the load vector
// s(R,t) is constant.
package lowerbound
