package analysis

import (
	"fmt"
	"sort"

	"dvbp/internal/core"
	"dvbp/internal/item"
)

// QualityMetrics quantifies the paper's Section 7 explanation of average-case
// behaviour, which attributes an algorithm's cost to two factors:
//
//   - packing: how tightly items are packed — wasted space forces extra
//     bins. We measure the time-average utilisation of open bins.
//   - alignment: how well co-located items' durations match — a bin whose
//     items depart at staggered times stays open with dying residual load.
//     We measure the fraction of bin-time spent in such "straggler" states.
//
// Best Fit should show high packing and mediocre alignment, Next Fit good
// alignment and poor packing, Worst Fit poor packing, and Move To Front good
// scores on both — the paper's qualitative claims, now measurable.
type QualityMetrics struct {
	// AvgUtilization is the time- and bin-averaged L∞ load of open bins in
	// (0, 1]: ∫ Σ_open ‖load_b(t)‖∞ dt / ∫ #open(t) dt. Higher = tighter
	// packing.
	AvgUtilization float64
	// AvgVolumeUtilization is the same with mean component load instead of
	// L∞ (volume packed / volume capacity across dimensions).
	AvgVolumeUtilization float64
	// StragglerFraction is the fraction of total bin-open time during which
	// a bin's current load is below half its historical peak — time spent
	// held open by leftovers. Lower = better alignment.
	StragglerFraction float64
	// BinTime is the denominator ∫ #open(t) dt (= the packing cost).
	BinTime float64
}

// String renders the metrics compactly.
func (q QualityMetrics) String() string {
	return fmt.Sprintf("util=%.4f volUtil=%.4f straggler=%.4f binTime=%.4f",
		q.AvgUtilization, q.AvgVolumeUtilization, q.StragglerFraction, q.BinTime)
}

// Quality computes the metrics for one simulation result on its instance.
func Quality(l *item.List, res *core.Result) (QualityMetrics, error) {
	if res.Items != l.Len() {
		return QualityMetrics{}, fmt.Errorf("analysis: result has %d items, list %d", res.Items, l.Len())
	}
	itemByID := make(map[int]item.Item, l.Len())
	for _, it := range l.Items {
		itemByID[it.ID] = it
	}

	// Per-bin event timeline: load changes only at arrivals/departures of
	// the bin's own items, so each segment's load is rebuilt from scratch
	// (L∞ is not additive across deltas).
	binItems := make(map[int][]item.Item)
	for _, p := range res.Placements {
		binItems[p.BinID] = append(binItems[p.BinID], itemByID[p.ItemID])
	}

	var (
		utilNum, volNum, straggler, binTime float64
	)
	for _, bu := range res.Bins {
		items := binItems[bu.BinID]
		// Collect breakpoints inside the bin's life.
		pts := map[float64]bool{bu.OpenedAt: true, bu.ClosedAt: true}
		for _, it := range items {
			if it.Arrival > bu.OpenedAt && it.Arrival < bu.ClosedAt {
				pts[it.Arrival] = true
			}
			if it.Departure > bu.OpenedAt && it.Departure < bu.ClosedAt {
				pts[it.Departure] = true
			}
		}
		times := make([]float64, 0, len(pts))
		for t := range pts {
			times = append(times, t)
		}
		sort.Float64s(times)

		peak := 0.0
		type segment struct {
			length, linf, vol float64
		}
		var segs []segment
		d := float64(l.Dim)
		for i := 0; i+1 < len(times); i++ {
			mid := (times[i] + times[i+1]) / 2
			linf, vol := 0.0, 0.0
			loads := make([]float64, l.Dim)
			for _, it := range items {
				if it.ActiveAt(mid) {
					for j, s := range it.Size {
						loads[j] += s
					}
				}
			}
			for _, x := range loads {
				if x > linf {
					linf = x
				}
				vol += x
			}
			vol /= d
			segs = append(segs, segment{length: times[i+1] - times[i], linf: linf, vol: vol})
			if linf > peak {
				peak = linf
			}
		}
		for _, s := range segs {
			utilNum += s.linf * s.length
			volNum += s.vol * s.length
			binTime += s.length
			if s.linf < peak/2 {
				straggler += s.length
			}
		}
	}
	if binTime == 0 {
		return QualityMetrics{}, fmt.Errorf("analysis: zero bin time")
	}
	return QualityMetrics{
		AvgUtilization:       utilNum / binTime,
		AvgVolumeUtilization: volNum / binTime,
		StragglerFraction:    straggler / binTime,
		BinTime:              binTime,
	}, nil
}
