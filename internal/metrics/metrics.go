package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync/atomic"
)

// Counter is a monotonically increasing integer metric. The zero value is
// ready to use. All methods are safe for concurrent use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n. Counters only go up; use a Gauge for values that can fall.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a float64 metric that can move in either direction. The zero
// value is ready to use. All methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (which may be negative).
func (g *Gauge) Add(delta float64) { g.AddAndGet(delta) }

// AddAndGet adjusts the gauge by delta and returns the value it installed.
// Unlike Add-then-Value, the returned value is the atomic result of this
// update, so concurrent adjusters each observe a distinct intermediate state
// (needed e.g. to maintain a high-water mark of a shared up/down gauge).
func (g *Gauge) AddAndGet(delta float64) float64 {
	for {
		old := g.bits.Load()
		v := math.Float64frombits(old) + delta
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return v
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — a running
// high-water mark.
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram counts observations into buckets with fixed upper bounds chosen
// at construction. An implicit +Inf bucket catches everything above the last
// bound, so no observation is ever dropped. All methods are safe for
// concurrent use.
type Histogram struct {
	bounds  []float64 // ascending upper bounds, exclusive of +Inf
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds. Bounds are sorted and de-duplicated; an empty list yields a
// histogram with only the +Inf bucket (still useful for count/sum).
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	uniq := bs[:0]
	for i, b := range bs {
		if math.IsNaN(b) || math.IsInf(b, 0) {
			panic(fmt.Sprintf("metrics: invalid histogram bound %v", b))
		}
		if i == 0 || b != bs[i-1] {
			uniq = append(uniq, b)
		}
	}
	return &Histogram{bounds: uniq, buckets: make([]atomic.Uint64, len(uniq)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v: bucket "le bound"
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Bounds returns the configured upper bounds (without the implicit +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Buckets returns cumulative counts aligned with Bounds() plus a final
// entry for the +Inf bucket, Prometheus-style: Buckets()[i] is the number of
// observations <= Bounds()[i], and the last entry equals Count().
func (h *Histogram) Buckets() []uint64 {
	out := make([]uint64, len(h.buckets))
	var cum uint64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		out[i] = cum
	}
	return out
}
