package experiments

import (
	"context"
	"fmt"
	"strings"

	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/lowerbound"
	"dvbp/internal/metrics"
	"dvbp/internal/parallel"
	"dvbp/internal/report"
	"dvbp/internal/stats"
	"dvbp/internal/workload"
)

// This file is the fragmentation head-to-head: every Any Fit policy
// (including the fragmentation-aware family) against the paper-uniform,
// Azure-like and Google-like trace models, scored on cost/LB and the
// waste/fragmentation account of metrics.FragTracker. Its point is the
// FARB-style ranking flip: on the paper's uniform traces plain load-greedy
// policies win, while on datacenter-shaped traces (correlated heavy-tailed
// demands, mixed shape families) the balance-aware policies overtake them —
// a ranking no single trace model exposes.

// FragConfig parameterises the fragmentation head-to-head.
type FragConfig struct {
	// D is the number of resource dimensions (>= 2 for stranding to exist).
	D int
	// Instances is the number of independent instances per trace model.
	Instances int
	Seed      int64
	// Horizon is the arrival window of the datacenter trace models; the
	// uniform model's item count is scaled to produce comparable load.
	Horizon float64
	RunControl
}

// DefaultFrag keeps the study cheap enough for a smoke run while leaving the
// ranking gaps clearly outside the error bars.
func DefaultFrag() FragConfig {
	return FragConfig{D: 2, Instances: 40, Seed: 1, Horizon: 120}
}

// Validate checks the configuration.
func (c FragConfig) Validate() error {
	switch {
	case c.D < 1:
		return fmt.Errorf("experiments: frag D = %d, want >= 1", c.D)
	case c.Instances < 1:
		return fmt.Errorf("experiments: frag Instances = %d, want >= 1", c.Instances)
	case c.Horizon <= 0:
		return fmt.Errorf("experiments: frag Horizon = %g, want > 0", c.Horizon)
	}
	return nil
}

// fragTraces returns the trace models in display order. Each generator is
// deterministic in its seed.
func (c FragConfig) fragTraces() []struct {
	Name string
	Gen  func(seed int64) (*item.List, error)
} {
	azure, google := workload.AzureLike(c.D), workload.GoogleLike(c.D)
	azure.Horizon, google.Horizon = c.Horizon, c.Horizon
	// Match the uniform model's total work to the Azure-like trace: both see
	// roughly Rate·Horizon arrivals over the same window. Mu stays in the
	// paper's long-duration regime but may not exceed the window.
	mu := 50
	if t := int(c.Horizon); t < mu {
		mu = t
	}
	ucfg := workload.UniformConfig{
		D: c.D, N: int(azure.Rate * c.Horizon), Mu: mu, T: int(c.Horizon), B: 20,
	}
	return []struct {
		Name string
		Gen  func(seed int64) (*item.List, error)
	}{
		{"uniform", func(seed int64) (*item.List, error) { return workload.Uniform(ucfg, seed) }},
		{"azure", func(seed int64) (*item.List, error) { return workload.Datacenter(azure, seed) }},
		{"google", func(seed int64) (*item.List, error) { return workload.Datacenter(google, seed) }},
	}
}

// FragPolicyNames returns the head-to-head's policy list: the paper's seven
// plus the fragmentation-aware family.
func FragPolicyNames() []string {
	return append(core.PolicyNames(), core.FragmentationAwareNames()...)
}

// FragCell aggregates one (trace, policy) pair across instances.
type FragCell struct {
	Trace  string
	Policy string
	// Ratio is cost/LB; the other summaries aggregate the FragTracker
	// account over instances.
	Ratio     stats.Summary
	WastePct  stats.Summary
	FragPct   stats.Summary
	Imbalance stats.Summary
	// Stranded is the dimension-summed stranded capacity·time.
	Stranded stats.Summary
}

// FragStudy is the full head-to-head result.
type FragStudy struct {
	Traces   []string
	Policies []string
	// Cells is indexed [trace][policy], matching Traces and Policies.
	Cells [][]FragCell
}

// RankFlip records a pair of policies whose cost ranking inverts between two
// trace models: A beats B on TraceA but loses to B on TraceB. Gaps are the
// mean cost/LB differences (both positive).
type RankFlip struct {
	A, B           string
	TraceA, TraceB string
	GapA, GapB     float64
}

// fragTee forwards engine callbacks to the per-run fragmentation tracker and
// an optional shared observer (the -metrics collector), so attaching the
// tracker does not displace experiment-wide instrumentation.
type fragTee struct {
	tr  *metrics.FragTracker
	obs core.Observer
}

func (t fragTee) BeforePack(req core.Request, open []*core.Bin) {
	t.tr.BeforePack(req, open)
	if t.obs != nil {
		t.obs.BeforePack(req, open)
	}
}

func (t fragTee) AfterPack(req core.Request, b *core.Bin, opened bool) {
	t.tr.AfterPack(req, b, opened)
	if t.obs != nil {
		t.obs.AfterPack(req, b, opened)
	}
}

func (t fragTee) BinClosed(b *core.Bin, at float64) {
	t.tr.BinClosed(b, at)
	if t.obs != nil {
		t.obs.BinClosed(b, at)
	}
}

func (t fragTee) ItemDeparted(itemID int, b *core.Bin, at float64) {
	t.tr.ItemDeparted(itemID, b, at)
	if o, ok := t.obs.(core.DepartureObserver); ok {
		o.ItemDeparted(itemID, b, at)
	}
}

func (t fragTee) ItemMigrated(itemID int, from, to *core.Bin, at, cost float64, drained bool) {
	t.tr.ItemMigrated(itemID, from, to, at, cost, drained)
	if o, ok := t.obs.(core.MigrationObserver); ok {
		o.ItemMigrated(itemID, from, to, at, cost, drained)
	}
}

// RunFrag executes the head-to-head. Results are deterministic in (cfg.Seed,
// cfg.Instances) for any Workers value.
func RunFrag(cfg FragConfig) (*FragStudy, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.requireUnsharded("frag"); err != nil {
		return nil, err
	}
	traces := cfg.fragTraces()
	names := FragPolicyNames()
	type cell struct {
		ratio, waste, frag, imb, stranded float64
	}
	trials, err := runShards(cfg.RunControl, cfg.Instances, func(_ context.Context, i int) ([][]cell, error) {
		seed := parallel.SeedFor(cfg.Seed, i)
		out := make([][]cell, len(traces))
		for ti, tr := range traces {
			l, err := tr.Gen(seed)
			if err != nil {
				return nil, err
			}
			lb := lowerbound.IntegralBound(l)
			out[ti] = make([]cell, len(names))
			for pi, n := range names {
				p, err := core.NewPolicy(n, seed)
				if err != nil {
					return nil, err
				}
				ft := metrics.NewFragTracker(cfg.D, nil)
				var shared core.Observer
				if cfg.Observer != nil {
					shared = cfg.Observer
					if rs, ok := shared.(metrics.RunScoper); ok {
						shared = rs.ForRun()
					}
				}
				res, err := core.Simulate(l, p, core.WithObserver(fragTee{tr: ft, obs: shared}))
				if err != nil {
					return nil, err
				}
				s := ft.Summary()
				strandedSum := 0.0
				for _, x := range s.StrandedTime {
					strandedSum += x
				}
				out[ti][pi] = cell{
					ratio: res.Cost / lb, waste: s.WastePct, frag: s.FragPct,
					imb: s.MeanImbalance, stranded: strandedSum,
				}
			}
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	study := &FragStudy{Policies: names}
	for ti, tr := range traces {
		study.Traces = append(study.Traces, tr.Name)
		row := make([]FragCell, len(names))
		for pi, n := range names {
			var r, w, f, im, st stats.Accumulator
			for _, t := range trials {
				c := t[ti][pi]
				r.Add(c.ratio)
				w.Add(c.waste)
				f.Add(c.frag)
				im.Add(c.imb)
				st.Add(c.stranded)
			}
			row[pi] = FragCell{
				Trace: tr.Name, Policy: n,
				Ratio: r.Summarize(), WastePct: w.Summarize(), FragPct: f.Summarize(),
				Imbalance: im.Summarize(), Stranded: st.Summarize(),
			}
		}
		study.Cells = append(study.Cells, row)
	}
	return study, nil
}

// Ranking returns the study's policies ordered by mean cost/LB on one trace
// model (best first).
func (s *FragStudy) Ranking(trace string) []string {
	ti := s.traceIndex(trace)
	if ti < 0 {
		return nil
	}
	out := append([]string(nil), s.Policies...)
	cells := s.Cells[ti]
	// Insertion sort keeps the tie order deterministic (policy list order).
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && s.meanRatio(cells, out[j]) < s.meanRatio(cells, out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

func (s *FragStudy) traceIndex(trace string) int {
	for i, t := range s.Traces {
		if t == trace {
			return i
		}
	}
	return -1
}

func (s *FragStudy) meanRatio(cells []FragCell, policy string) float64 {
	for _, c := range cells {
		if c.Policy == policy {
			return c.Ratio.Mean
		}
	}
	return 0
}

// Flips lists the policy pairs whose mean-cost ranking inverts between the
// two trace models, strongest inversion first. minGap filters noise: both
// sides of the flip must exceed it (as an absolute cost/LB difference).
func (s *FragStudy) Flips(traceA, traceB string, minGap float64) []RankFlip {
	ai, bi := s.traceIndex(traceA), s.traceIndex(traceB)
	if ai < 0 || bi < 0 {
		return nil
	}
	var out []RankFlip
	for i, p := range s.Policies {
		for j := i + 1; j < len(s.Policies); j++ {
			q := s.Policies[j]
			dA := s.meanRatio(s.Cells[ai], q) - s.meanRatio(s.Cells[ai], p) // >0: p beats q on A
			dB := s.meanRatio(s.Cells[bi], p) - s.meanRatio(s.Cells[bi], q) // >0: q beats p on B
			switch {
			case dA > minGap && dB > minGap:
				out = append(out, RankFlip{A: p, B: q, TraceA: traceA, TraceB: traceB, GapA: dA, GapB: dB})
			case -dA > minGap && -dB > minGap:
				out = append(out, RankFlip{A: q, B: p, TraceA: traceA, TraceB: traceB, GapA: -dA, GapB: -dB})
			}
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j].GapA+out[j].GapB > out[j-1].GapA+out[j-1].GapB; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// Chart renders mean cost/LB per policy across the trace models (x = trace
// position). Series that cross between x positions are exactly the ranking
// flips Flips reports.
func (s *FragStudy) Chart() *report.Chart {
	c := &report.Chart{
		Title:  "Fragmentation head-to-head: cost/LB by trace model",
		XLabel: fmt.Sprintf("trace model (%s)", traceAxisLegend(s.Traces)),
		YLabel: "cost / lower bound",
	}
	for pi, p := range s.Policies {
		series := report.Series{Name: p}
		for ti := range s.Traces {
			cell := s.Cells[ti][pi]
			series.X = append(series.X, float64(ti+1))
			series.Y = append(series.Y, cell.Ratio.Mean)
			series.YErr = append(series.YErr, cell.Ratio.StdDev)
		}
		c.Series = append(c.Series, series)
	}
	return c
}

func traceAxisLegend(traces []string) string {
	parts := make([]string, len(traces))
	for i, t := range traces {
		parts[i] = fmt.Sprintf("%d=%s", i+1, t)
	}
	return strings.Join(parts, ", ")
}

// Table renders one trace model's head-to-head rows in policy order.
func (s *FragStudy) Table(trace string) *report.Table {
	ti := s.traceIndex(trace)
	if ti < 0 {
		return &report.Table{Title: "unknown trace " + trace}
	}
	rows := make([]report.FragRow, 0, len(s.Policies))
	for _, c := range s.Cells[ti] {
		rows = append(rows, report.FragRow{
			Label: c.Policy,
			Ratio: c.Ratio.Mean,
			Summary: metrics.FragSummary{
				WastePct:      c.WastePct.Mean,
				FragPct:       c.FragPct.Mean,
				MeanImbalance: c.Imbalance.Mean,
				StrandedTime:  []float64{c.Stranded.Mean},
			},
		})
	}
	return report.FragTable(fmt.Sprintf("Fragmentation head-to-head on %s traces (mean over instances)", trace), rows)
}
