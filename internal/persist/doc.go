// Package persist is the crash-consistent checkpoint/restore layer for the
// packing engine: a write-ahead log of committed engine events plus periodic
// full-state snapshots, both stored in a versioned, CRC-checksummed,
// length-prefixed record format.
//
// # Recovery model
//
// The design leans on the engine's determinism contract: the event stream is
// a pure function of (instance, policy, options), so recovery does not need
// to re-apply logged events as mutations. Instead it restores the newest
// valid snapshot and re-steps the engine, verifying that every regenerated
// event is bit-identical to the logged suffix — the WAL tells recovery how
// far the run had progressed and doubles as an end-to-end determinism check.
//
// Derived structures are deliberately absent from the on-disk format. In
// particular the engine's indexed bin store (internal/binindex) is rebuilt
// from the snapshot's open-bin set on restore; because the store's shape is
// a pure function of its contents (DESIGN.md §11), the rebuilt index is
// structurally identical to the one the crashed process held, down to the
// fit-check counts it produces — which is what lets a restored run emit
// byte-identical metrics, not just byte-identical placements.
//
// # Corruption handling
//
// Corruption never panics. Torn or bit-flipped tails are truncated at the
// first bad checksum, damaged snapshots are skipped in favour of older ones
// (or a from-scratch replay), and every tolerated defect is surfaced as a
// structured *CorruptionError in the recovery report.
//
// # Structure
//
//   - format.go, file.go: the record container — magic, version, FileKind,
//     per-record length prefix + CRC32C, fsync policy (Writer, ReadFile).
//   - meta.go: RunMeta identity block (workload hash, policy, seed, fault
//     plan) that guards against restoring a checkpoint into the wrong run.
//   - wal.go: event-record codec (AppendEventRecord, DecodeEventRecord).
//   - snapcodec.go: the engine snapshot codec (EncodeSnapshot,
//     DecodeSnapshot).
//   - session.go: Session/Begin — the producer side: append events, cut
//     snapshots every N events, rotate files.
//   - recover.go: Recover — the consumer side described above.
//
// The kill-and-recover torture tests (torture_test.go and cmd/dvbpchaos)
// exercise the full matrix: process kills at arbitrary event indices, WAL
// truncations, snapshot deletions, and random bit flips.
package persist
