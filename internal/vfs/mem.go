package vfs

import (
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// CrashMode selects what a simulated power loss does to bytes and directory
// entries that were written but not yet fsynced. All three are legal disk
// behaviours; recovery must survive every one of them.
type CrashMode int

const (
	// CrashLost discards everything after the last sync barrier: file
	// contents revert to their last fsynced bytes, directory entries to
	// their last SyncDir state.
	CrashLost CrashMode = iota
	// CrashFlushed is the lucky outcome: the device happened to write back
	// everything in flight, so volatile contents and entries all survive.
	CrashFlushed
	// CrashTorn keeps a prefix of each file's unsynced tail (length chosen
	// by the tear salt) and reverts directory entries to their durable
	// state — the classic torn-write crash.
	CrashTorn
)

func (m CrashMode) String() string {
	switch m {
	case CrashLost:
		return "lost"
	case CrashFlushed:
		return "flushed"
	case CrashTorn:
		return "torn"
	default:
		return fmt.Sprintf("CrashMode(%d)", int(m))
	}
}

// memInode is one file's storage: the volatile view (what reads observe) and
// the durable view (what survives power loss, as of the last File.Sync).
type memInode struct {
	data   []byte // volatile contents
	synced []byte // contents as of the last successful fsync
}

// Mem is a deterministic in-memory FS that models durability: contents are
// volatile until File.Sync, directory entries until SyncDir. Every mutating
// operation increments an op counter; SetCrashPoint arms a power loss at a
// chosen op, after which every operation fails with ErrCrashed until Restart.
// Directory creation is modeled as immediately durable (metadata journaling);
// file entries are not.
//
// Mem is safe for concurrent use. CreateTemp names come from a counter, so a
// deterministic workload produces a byte-identical filesystem every run —
// the property the crash-point sweep's baseline comparison rests on.
type Mem struct {
	mu         sync.Mutex
	entries    map[string]*memInode // live (volatile) file namespace
	durEntries map[string]*memInode // durable file namespace (last SyncDir per dir)
	dirs       map[string]bool      // directories (durable on creation)
	tmpSeq     int
	ops        int64
	crashAt    int64 // power loss when ops reaches this count; 0 = disarmed
	crashMode  CrashMode
	tearSalt   int64
	crashed    bool
	gen        int // bumped at crash so stale handles fail
}

// NewMem returns an empty in-memory filesystem.
func NewMem() *Mem {
	return &Mem{
		entries:    make(map[string]*memInode),
		durEntries: make(map[string]*memInode),
		dirs:       make(map[string]bool),
	}
}

// Ops returns the number of mutating operations performed so far.
func (m *Mem) Ops() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ops
}

// Crashed reports whether a simulated power loss has happened and Restart has
// not been called yet.
func (m *Mem) Crashed() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.crashed
}

// SetCrashPoint arms a power loss at the n-th mutating operation from now
// (1-based over the lifetime counter: the op whose number equals n crashes
// instead of completing). The tear salt picks the surviving prefix length of
// each unsynced tail in CrashTorn mode, so a sweep can vary tears
// deterministically.
func (m *Mem) SetCrashPoint(n int64, mode CrashMode, tearSalt int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashAt = n
	m.crashMode = mode
	m.tearSalt = tearSalt
}

// CrashNow simulates an immediate power loss.
func (m *Mem) CrashNow(mode CrashMode) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashMode = mode
	m.crash()
}

// Restart brings the machine back up after a crash: the filesystem now holds
// exactly what survived, and operations work again. Handles opened before the
// crash stay dead.
func (m *Mem) Restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashed = false
	m.crashAt = 0
}

// tick counts one mutating operation and fires the armed crash. Caller holds
// m.mu. The crashing operation does not take effect (except that a torn-mode
// crash during a Write may keep a prefix of bytes already in the volatile
// view — Write applies before calling tick).
func (m *Mem) tick() error {
	if m.crashed {
		return ErrCrashed
	}
	m.ops++
	if m.crashAt > 0 && m.ops == m.crashAt {
		m.crash()
		return ErrCrashed
	}
	return nil
}

// crash applies the armed CrashMode: compute what survives, make it both the
// live and the durable state, and kill outstanding handles. Caller holds m.mu.
func (m *Mem) crash() {
	survivors := make(map[string]*memInode)
	switch m.crashMode {
	case CrashFlushed:
		for p, ino := range m.entries {
			survivors[p] = &memInode{data: clone(ino.data)}
		}
	case CrashTorn:
		for p, ino := range m.durEntries {
			nd := clone(ino.synced)
			if tail := len(ino.data) - len(ino.synced); tail > 0 {
				keep := int(m.tearSalt % int64(tail+1))
				nd = append(nd, ino.data[len(ino.synced):len(ino.synced)+keep]...)
			}
			survivors[p] = &memInode{data: nd}
		}
	default: // CrashLost
		for p, ino := range m.durEntries {
			survivors[p] = &memInode{data: clone(ino.synced)}
		}
	}
	for _, ino := range survivors {
		ino.synced = clone(ino.data) // what survived is on the platter
	}
	m.entries = survivors
	m.durEntries = make(map[string]*memInode, len(survivors))
	for p, ino := range survivors {
		m.durEntries[p] = ino
	}
	m.crashed = true
	m.gen++
}

func clone(b []byte) []byte { return append([]byte(nil), b...) }

func norm(p string) string { return filepath.Clean(p) }

// hasParent reports whether the parent directory of path exists. Caller holds
// m.mu.
func (m *Mem) hasParent(p string) bool {
	dir := filepath.Dir(p)
	return dir == "." || dir == "/" || m.dirs[dir]
}

// OpenFile implements FS.
func (m *Mem) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.tick(); err != nil {
		return nil, err
	}
	name = norm(name)
	ino, ok := m.entries[name]
	switch {
	case !ok && flag&os.O_CREATE == 0:
		return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
	case !ok:
		if !m.hasParent(name) {
			return nil, &fs.PathError{Op: "open", Path: name, Err: fs.ErrNotExist}
		}
		ino = &memInode{}
		m.entries[name] = ino
	case flag&os.O_TRUNC != 0:
		ino.data = ino.data[:0] // volatile until the next fsync
	}
	return &memFile{m: m, ino: ino, name: name, gen: m.gen}, nil
}

// CreateTemp implements FS with counter-derived (deterministic) names.
func (m *Mem) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.tick(); err != nil {
		return nil, err
	}
	dir = norm(dir)
	if dir != "." && dir != "/" && !m.dirs[dir] {
		return nil, &fs.PathError{Op: "createtemp", Path: dir, Err: fs.ErrNotExist}
	}
	m.tmpSeq++
	var base string
	if i := strings.LastIndexByte(pattern, '*'); i >= 0 {
		base = pattern[:i] + fmt.Sprintf("%d", m.tmpSeq) + pattern[i+1:]
	} else {
		base = pattern + fmt.Sprintf("%d", m.tmpSeq)
	}
	name := filepath.Join(dir, base)
	if _, dup := m.entries[name]; dup {
		return nil, &fs.PathError{Op: "createtemp", Path: name, Err: fs.ErrExist}
	}
	ino := &memInode{}
	m.entries[name] = ino
	return &memFile{m: m, ino: ino, name: name, gen: m.gen}, nil
}

// ReadFile implements FS: reads observe the volatile view, like the page
// cache.
func (m *Mem) ReadFile(name string) ([]byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	ino, ok := m.entries[norm(name)]
	if !ok {
		return nil, &fs.PathError{Op: "read", Path: name, Err: fs.ErrNotExist}
	}
	return clone(ino.data), nil
}

// ReadDir implements FS.
func (m *Mem) ReadDir(name string) ([]fs.DirEntry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	name = norm(name)
	if name != "." && name != "/" && !m.dirs[name] {
		return nil, &fs.PathError{Op: "readdir", Path: name, Err: fs.ErrNotExist}
	}
	var out []fs.DirEntry
	for p, ino := range m.entries {
		if filepath.Dir(p) == name {
			out = append(out, memDirEntry{name: filepath.Base(p), size: int64(len(ino.data))})
		}
	}
	for d := range m.dirs {
		if filepath.Dir(d) == name {
			out = append(out, memDirEntry{name: filepath.Base(d), dir: true})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name() < out[j].Name() })
	return out, nil
}

// Stat implements FS.
func (m *Mem) Stat(name string) (fs.FileInfo, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.crashed {
		return nil, ErrCrashed
	}
	name = norm(name)
	if ino, ok := m.entries[name]; ok {
		return memFileInfo{name: filepath.Base(name), size: int64(len(ino.data))}, nil
	}
	if name == "." || name == "/" || m.dirs[name] {
		return memFileInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, &fs.PathError{Op: "stat", Path: name, Err: fs.ErrNotExist}
}

// Rename implements FS. The new name is volatile until its directory is
// synced; the displaced durable entry (if any) keeps pointing at the old
// inode until then, which is exactly the atomic-replace guarantee the
// write-temp-then-rename dance relies on.
func (m *Mem) Rename(oldpath, newpath string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.tick(); err != nil {
		return err
	}
	oldpath, newpath = norm(oldpath), norm(newpath)
	ino, ok := m.entries[oldpath]
	if !ok {
		return &fs.PathError{Op: "rename", Path: oldpath, Err: fs.ErrNotExist}
	}
	if !m.hasParent(newpath) {
		return &fs.PathError{Op: "rename", Path: newpath, Err: fs.ErrNotExist}
	}
	delete(m.entries, oldpath)
	m.entries[newpath] = ino
	return nil
}

// Remove implements FS. Durable directory entries persist until SyncDir.
func (m *Mem) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.tick(); err != nil {
		return err
	}
	name = norm(name)
	if _, ok := m.entries[name]; !ok {
		return &fs.PathError{Op: "remove", Path: name, Err: fs.ErrNotExist}
	}
	delete(m.entries, name)
	return nil
}

// RemoveAll implements FS.
func (m *Mem) RemoveAll(path string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.tick(); err != nil {
		return err
	}
	path = norm(path)
	prefix := path + string(filepath.Separator)
	for p := range m.entries {
		if p == path || strings.HasPrefix(p, prefix) {
			delete(m.entries, p)
			delete(m.durEntries, p)
		}
	}
	for d := range m.dirs {
		if d == path || strings.HasPrefix(d, prefix) {
			delete(m.dirs, d)
		}
	}
	return nil
}

// MkdirAll implements FS. Directories are durable on creation (metadata
// journaling); only file entries within them need SyncDir.
func (m *Mem) MkdirAll(path string, perm fs.FileMode) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.tick(); err != nil {
		return err
	}
	path = norm(path)
	for p := path; p != "." && p != "/"; p = filepath.Dir(p) {
		m.dirs[p] = true
	}
	return nil
}

// SyncDir implements FS: the directory's live entries become its durable
// entries — creations and renames survive, removals and renames-away are
// forgotten durably too.
func (m *Mem) SyncDir(dir string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.tick(); err != nil {
		return err
	}
	dir = norm(dir)
	if dir != "." && dir != "/" && !m.dirs[dir] {
		return &fs.PathError{Op: "syncdir", Path: dir, Err: fs.ErrNotExist}
	}
	for p := range m.durEntries {
		if filepath.Dir(p) == dir {
			if _, live := m.entries[p]; !live {
				delete(m.durEntries, p)
			}
		}
	}
	for p, ino := range m.entries {
		if filepath.Dir(p) == dir {
			m.durEntries[p] = ino
		}
	}
	return nil
}

// memFile is a handle onto a Mem inode.
type memFile struct {
	m      *Mem
	ino    *memInode
	name   string
	off    int64
	gen    int
	closed bool
}

func (f *memFile) Name() string { return f.name }

// check validates the handle against crash/restart generations. Caller holds
// f.m.mu.
func (f *memFile) check() error {
	if f.closed {
		return fs.ErrClosed
	}
	if f.m.crashed || f.gen != f.m.gen {
		return ErrCrashed
	}
	return nil
}

func (f *memFile) Write(p []byte) (int, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	// Apply to the volatile view first, then tick: a torn-mode crash landing
	// on this very write may keep a prefix of it, like a real device.
	for int64(len(f.ino.data)) < f.off {
		f.ino.data = append(f.ino.data, 0)
	}
	f.ino.data = append(f.ino.data[:f.off], p...)
	f.off += int64(len(p))
	if err := f.m.tick(); err != nil {
		return 0, err
	}
	return len(p), nil
}

func (f *memFile) Sync() error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	if err := f.m.tick(); err != nil {
		return err
	}
	f.ino.synced = clone(f.ino.data)
	return nil
}

func (f *memFile) Truncate(size int64) error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if err := f.check(); err != nil {
		return err
	}
	if err := f.m.tick(); err != nil {
		return err
	}
	for int64(len(f.ino.data)) < size {
		f.ino.data = append(f.ino.data, 0)
	}
	f.ino.data = f.ino.data[:size]
	return nil
}

func (f *memFile) Seek(offset int64, whence int) (int64, error) {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if err := f.check(); err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		f.off = offset
	case io.SeekCurrent:
		f.off += offset
	case io.SeekEnd:
		f.off = int64(len(f.ino.data)) + offset
	default:
		return 0, fmt.Errorf("vfs: bad seek whence %d", whence)
	}
	if f.off < 0 {
		return 0, fmt.Errorf("vfs: negative seek offset")
	}
	return f.off, nil
}

func (f *memFile) Close() error {
	f.m.mu.Lock()
	defer f.m.mu.Unlock()
	if f.closed {
		return fs.ErrClosed
	}
	f.closed = true
	return nil
}

// memDirEntry / memFileInfo are the minimal listing types Mem returns.
type memDirEntry struct {
	name string
	size int64
	dir  bool
}

func (e memDirEntry) Name() string { return e.name }
func (e memDirEntry) IsDir() bool  { return e.dir }
func (e memDirEntry) Type() fs.FileMode {
	if e.dir {
		return fs.ModeDir
	}
	return 0
}
func (e memDirEntry) Info() (fs.FileInfo, error) {
	return memFileInfo{name: e.name, size: e.size, dir: e.dir}, nil
}

type memFileInfo struct {
	name string
	size int64
	dir  bool
}

func (i memFileInfo) Name() string { return i.name }
func (i memFileInfo) Size() int64  { return i.size }
func (i memFileInfo) Mode() fs.FileMode {
	if i.dir {
		return fs.ModeDir | 0o755
	}
	return 0o644
}
func (i memFileInfo) ModTime() time.Time { return time.Time{} }
func (i memFileInfo) IsDir() bool        { return i.dir }
func (i memFileInfo) Sys() any           { return nil }
