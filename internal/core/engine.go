package core

import (
	"fmt"
	"math"

	"dvbp/internal/eventq"
	"dvbp/internal/item"
)

// Option configures a simulation run.
type Option func(*config)

type config struct {
	clairvoyant bool
	audit       *Audit
	observer    Observer

	// Failure/recovery configuration (see failure.go).
	injector      FailureInjector
	retry         RetryPolicy
	maxBins       int
	queueWhenFull bool
	queueDeadline float64
}

// WithClairvoyance exposes item departure times to the policy (Request.
// HasDeparture = true). This enables the clairvoyant DVBP variant discussed
// as future work in Section 8; the paper's own algorithms never need it.
func WithClairvoyance() Option {
	return func(c *config) { c.clairvoyant = true }
}

// WithAudit records every packing decision into a (caller-owned) Audit for
// invariant checking in tests.
func WithAudit(a *Audit) Option {
	return func(c *config) { c.audit = a }
}

// Observer receives engine lifecycle callbacks; used by instrumentation such
// as the Theorem 2 leading-interval decomposition. Any method may be nil-safe
// no-op via BaseObserver.
type Observer interface {
	// BeforePack fires when an item is about to be dispatched, after all
	// events at or before the dispatch time have been processed. Under
	// admission control (WithMaxBins) the dispatch may fail: the follow-up
	// is then ItemQueued or ItemRejected (FailureObserver) instead of
	// AfterPack.
	BeforePack(req Request, open []*Bin)
	// AfterPack fires after the item is packed.
	AfterPack(req Request, b *Bin, opened bool)
	// BinClosed fires when a bin closes at time t — its last item departed,
	// or fault injection crashed it (in which case BinCrashed follows).
	BinClosed(b *Bin, t float64)
}

// WithObserver attaches an Observer to the run.
func WithObserver(o Observer) Option {
	return func(c *config) { c.observer = o }
}

// SelectObserver is an optional extension of Observer. When the attached
// Observer also implements SelectObserver, the engine counts the Bin.Fits
// evaluations each Policy.Select performs and reports them after every
// decision — the per-decision accounting the metrics layer records.
//
// chosen is Select's return value: nil means the policy declined every open
// bin and the engine opened a fresh one. fitChecks counts only the policy's
// own Fits calls; the engine's feasibility re-check while packing is not
// included. Runs whose observer does not implement SelectObserver pay no
// counting overhead.
type SelectObserver interface {
	// AfterSelect fires after Policy.Select returns, before the item is
	// packed (and before any new bin is opened).
	AfterSelect(req Request, chosen *Bin, fitChecks int)
}

// BaseObserver is an Observer with no-op methods, for embedding.
type BaseObserver struct{}

// BeforePack implements Observer.
func (BaseObserver) BeforePack(Request, []*Bin) {}

// AfterPack implements Observer.
func (BaseObserver) AfterPack(Request, *Bin, bool) {}

// BinClosed implements Observer.
func (BaseObserver) BinClosed(*Bin, float64) {}

type departure struct {
	itemID int
	binID  int
}

// retryDispatch is a scheduled re-dispatch of an evicted item.
type retryDispatch struct {
	it      item.Item
	attempt int
}

// queuedDispatch is one admission-queue entry, FIFO by enqueue order.
type queuedDispatch struct {
	it       item.Item
	attempt  int
	queuedAt float64
	deadline float64 // absolute drop time (inclusive)
}

// Event classes: when several events share a time instant they are processed
// in this order. Departures free capacity first (half-open intervals);
// crashes evict next, so a same-instant departure completes before the crash;
// re-dispatches of evicted items precede fresh arrivals (they have been
// waiting longer).
const (
	evDeparture = iota
	evCrash
	evRetry
	evArrival
	evNone
)

// Simulate runs the Any Fit skeleton (Algorithm 1) over the item list with
// the given policy and returns the resulting packing and its MinUsageTime
// cost. The list is validated first; the input is not modified.
//
// Event order: items are processed by (arrival, SeqNo). Because active
// intervals are half-open, departures at time t are processed before
// arrivals at time t — an item departing at t has freed its capacity for an
// item arriving at t. (The paper's Theorem 5 construction has new items
// arrive "just before" old ones depart; such instances encode the arrival at
// time t - ε or rely on same-time arrival ordering, both of which this
// engine preserves.) With fault injection, same-instant events run
// departures, then crashes, then re-dispatches of evicted items, then
// arrivals; the admission queue is drained after every capacity-freeing
// event, ahead of same-instant dispatches.
func Simulate(l *item.List, p Policy, opts ...Option) (*Result, error) {
	if err := l.Validate(); err != nil {
		return nil, fmt.Errorf("core: invalid input: %w", err)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.injector != nil && cfg.retry == nil {
		cfg.retry = retryNow{}
	}
	if err := acquirePolicy(p); err != nil {
		return nil, err
	}
	defer releasePolicy(p)
	p.Reset()

	arrivals := l.SortedByArrival()

	var (
		open       []*Bin // opening order (ascending ID); may hold tombstones until compacted
		holes      int    // tombstone (nil) count in open
		departures eventq.Queue[departure]
		crashes    eventq.Queue[int] // payload: bin ID
		retries    eventq.Queue[retryDispatch]
		retrySeq   int64
		waitq      []queuedDispatch
		res        = &Result{
			Algorithm: p.Name(), Dim: l.Dim, Items: l.Len(), Span: l.Span(), Mu: l.Mu(),
			Outcomes: make(map[int]Outcome, l.Len()),
		}
		nextBinID int
		binsByID  = make(map[int]*Bin)
		itemsByID = make(map[int]item.Item, l.Len())
		attempts  map[int]int // item ID -> eviction count (allocated on first crash)
		served    int
	)
	for _, it := range l.Items {
		itemsByID[it.ID] = it
	}
	var (
		probe  *fitProbe
		selObs SelectObserver
		fObs   FailureObserver
	)
	if so, ok := cfg.observer.(SelectObserver); ok {
		selObs = so
		probe = &fitProbe{}
	}
	if fo, ok := cfg.observer.(FailureObserver); ok {
		fObs = fo
	}

	makeReq := func(it item.Item, now float64, attempt int) Request {
		req := Request{ID: it.ID, SeqNo: it.SeqNo, Arrival: now, Size: it.Size, Attempt: attempt}
		if cfg.clairvoyant {
			req.Departure = it.Departure
			req.HasDeparture = true
		}
		return req
	}

	// Closing a bin only tombstones its slot — O(1), so a burst of closings
	// between two arrivals costs O(burst) instead of the O(burst·open)
	// repeated splicing would. The slice is compacted (order preserved)
	// before the next dispatch consults the policy.
	closeBinAt := func(b *Bin, t float64, crashed bool) {
		res.Bins = append(res.Bins, BinUsage{BinID: b.ID, OpenedAt: b.OpenedAt, ClosedAt: t, Packed: b.PackedItems(), Crashed: crashed})
		res.Cost += t - b.OpenedAt
		open[b.openIdx] = nil
		holes++
		delete(binsByID, b.ID)
		p.OnClose(b)
		if cfg.observer != nil {
			cfg.observer.BinClosed(b, t)
		}
	}

	compact := func() {
		if holes == 0 {
			return
		}
		live := open[:0]
		for _, b := range open {
			if b != nil {
				b.openIdx = len(live)
				live = append(live, b)
			}
		}
		for i := len(live); i < len(open); i++ {
			open[i] = nil // release closed bins to the GC
		}
		open = live
		holes = 0
	}

	// dispatch runs one packing decision for it at time now. It returns
	// placed=false when admission control turned the dispatch away (queued,
	// rejected, or — for fromQueue dispatches — left in the queue).
	dispatch := func(it item.Item, attempt int, now float64, fromQueue bool) (placed bool, err error) {
		compact()
		req := makeReq(it, now, attempt)
		if cfg.observer != nil {
			cfg.observer.BeforePack(req, open)
		}
		if probe != nil {
			probe.armed, probe.n = true, 0
		}
		b := p.Select(req, open)
		if probe != nil {
			probe.armed = false
			selObs.AfterSelect(req, b, probe.n)
		}
		opened := false
		if b == nil {
			if cfg.maxBins > 0 && len(open)-holes >= cfg.maxBins {
				if fromQueue {
					return false, nil // stays queued; caller keeps the entry
				}
				if cfg.queueWhenFull {
					waitq = append(waitq, queuedDispatch{it: it, attempt: attempt, queuedAt: now, deadline: now + cfg.queueDeadline})
					if fObs != nil {
						fObs.ItemQueued(req, now)
					}
				} else {
					res.Rejected++
					res.Outcomes[it.ID] = OutcomeRejected
					if fObs != nil {
						fObs.ItemRejected(req, now, false)
					}
				}
				return false, nil
			}
			b = newBin(nextBinID, l.Dim, now)
			b.openIdx = len(open)
			b.probe = probe
			nextBinID++
			open = append(open, b)
			binsByID[b.ID] = b
			opened = true
			if cfg.injector != nil {
				if at, ok := cfg.injector.BinOpened(b.ID, now); ok && !math.IsNaN(at) && at > now {
					crashes.PushAt(at, int64(b.ID), b.ID)
				}
			}
		} else if _, known := binsByID[b.ID]; !known {
			return false, fmt.Errorf("core: policy %s returned closed or foreign bin %d", p.Name(), b.ID)
		}
		if cfg.audit != nil {
			// Record before packing so loads and fit flags reflect the state
			// the policy actually saw.
			cfg.audit.record(req, b, opened, open)
		}
		if err := b.pack(it.ID, it.Size); err != nil {
			return false, fmt.Errorf("core: policy %s chose unfit bin: %w", p.Name(), err)
		}
		if cfg.audit != nil {
			// Audit mode cross-checks the incremental load against the
			// original canonical recompute after every mutation.
			b.auditCrossCheckLoad()
		}
		p.OnPack(req, b, opened)
		if cfg.observer != nil {
			cfg.observer.AfterPack(req, b, opened)
		}

		res.Placements = append(res.Placements, Placement{ItemID: it.ID, BinID: b.ID, Opened: opened, Time: now, Attempt: attempt})
		if attempt > 0 {
			res.Retries++
		}
		departures.PushAt(it.Departure, int64(it.ID), departure{itemID: it.ID, binID: b.ID})
		if live := len(open) - holes; live > res.MaxConcurrentBins {
			res.MaxConcurrentBins = live
		}
		return true, nil
	}

	// drainQueue gives every admission-queue entry one placement attempt at
	// time t, in FIFO order, dropping expired entries along the way. A single
	// pass suffices: capacity only shrinks while the pass places items.
	drainQueue := func(t float64) error {
		if len(waitq) == 0 {
			return nil
		}
		kept := waitq[:0]
		for _, q := range waitq {
			if t > q.deadline || t >= q.it.Departure {
				res.TimedOut++
				res.Outcomes[q.it.ID] = OutcomeTimedOut
				if fObs != nil {
					fObs.ItemRejected(makeReq(q.it, t, q.attempt), t, true)
				}
				continue
			}
			placed, err := dispatch(q.it, q.attempt, t, true)
			if err != nil {
				return err
			}
			if placed {
				res.QueuedPlaced++
				res.QueueDelay += t - q.queuedAt
				if fObs != nil {
					fObs.ItemDequeued(makeReq(q.it, t, q.attempt), q.queuedAt, t)
				}
				continue
			}
			kept = append(kept, q)
		}
		// Zero the tail so dropped entries don't pin memory.
		tail := waitq[len(kept):]
		for i := range tail {
			tail[i] = queuedDispatch{}
		}
		waitq = kept
		return nil
	}

	handleDeparture := func(t float64, ev departure) error {
		b, ok := binsByID[ev.binID]
		if !ok {
			if cfg.injector != nil {
				return nil // stale: the bin crashed and the item was evicted
			}
			return fmt.Errorf("core: departure from unknown bin %d", ev.binID)
		}
		if err := b.remove(ev.itemID); err != nil {
			return fmt.Errorf("core: %w", err)
		}
		if cfg.audit != nil {
			b.auditCrossCheckLoad()
		}
		served++
		res.Outcomes[ev.itemID] = OutcomeServed
		if b.Empty() {
			closeBinAt(b, t, false)
		}
		return drainQueue(t)
	}

	var evictIDs []int // scratch reused across crashes
	handleCrash := func(t float64, binID int) error {
		b, ok := binsByID[binID]
		if !ok {
			return nil // the bin closed naturally before its crash fired
		}
		// Ascending ID: deterministic eviction order. The scratch slice is
		// reused across crashes so eviction handling does not allocate once
		// it has grown to the largest eviction burst.
		evictIDs = b.appendActiveItemIDs(evictIDs[:0])
		evicted := evictIDs
		res.Crashes++
		closeBinAt(b, t, true)
		if fObs != nil {
			fObs.BinCrashed(b, t, len(evicted))
		}
		if attempts == nil {
			attempts = make(map[int]int)
		}
		for _, id := range evicted {
			it := itemsByID[id]
			attempts[id]++
			attempt := attempts[id]
			res.Evictions++
			req := makeReq(it, t, attempt)
			delay := cfg.retry.Delay(attempt)
			if !(delay > 0) { // also normalises NaN and negative delays
				delay = 0
			}
			retryAt := t + delay
			if retryAt < it.Departure {
				res.LostUsageTime += retryAt - t
				retrySeq++
				retries.PushAt(retryAt, retrySeq, retryDispatch{it: it, attempt: attempt})
				if fObs != nil {
					fObs.ItemEvicted(req, b, t, retryAt)
				}
			} else {
				res.ItemsLost++
				res.LostUsageTime += it.Departure - t
				res.Outcomes[id] = OutcomeLost
				if fObs != nil {
					fObs.ItemEvicted(req, b, t, it.Departure)
					fObs.ItemLost(req, t)
				}
			}
		}
		return drainQueue(t)
	}

	// Merge loop: repeatedly process the earliest pending event across the
	// four sources, breaking time ties by event class (departure < crash <
	// re-dispatch < arrival) and, within a class, by each queue's own
	// deterministic sequence.
	ai := 0
	for {
		t, class := math.Inf(1), evNone
		if e, ok := departures.Peek(); ok {
			t, class = e.Time, evDeparture
		}
		if e, ok := crashes.Peek(); ok && (e.Time < t || (e.Time == t && evCrash < class)) {
			t, class = e.Time, evCrash
		}
		if e, ok := retries.Peek(); ok && (e.Time < t || (e.Time == t && evRetry < class)) {
			t, class = e.Time, evRetry
		}
		if ai < len(arrivals) && (arrivals[ai].Arrival < t || (arrivals[ai].Arrival == t && evArrival < class)) {
			t, class = arrivals[ai].Arrival, evArrival
		}
		if class == evNone {
			break
		}
		var err error
		switch class {
		case evDeparture:
			e, _ := departures.Pop()
			err = handleDeparture(e.Time, e.Payload)
		case evCrash:
			e, _ := crashes.Pop()
			err = handleCrash(e.Time, e.Payload)
		case evRetry:
			e, _ := retries.Pop()
			_, err = dispatch(e.Payload.it, e.Payload.attempt, e.Time, false)
		case evArrival:
			it := arrivals[ai]
			ai++
			_, err = dispatch(it, 0, it.Arrival, false)
		}
		if err != nil {
			return nil, err
		}
	}

	// Defensive sweep: the final bin close drains the queue with the whole
	// fleet free, so entries can remain only if they were already expired.
	for _, q := range waitq {
		res.TimedOut++
		res.Outcomes[q.it.ID] = OutcomeTimedOut
		if fObs != nil {
			t := math.Min(q.deadline, q.it.Departure)
			fObs.ItemRejected(makeReq(q.it, t, q.attempt), t, true)
		}
	}
	waitq = nil

	if len(open)-holes != 0 {
		return nil, fmt.Errorf("core: internal error: %d bins left open after drain", len(open)-holes)
	}
	if served+res.ItemsLost+res.Rejected+res.TimedOut != l.Len() {
		return nil, fmt.Errorf("core: internal error: item conservation violated (%d served, %d lost, %d rejected, %d timed out of %d)",
			served, res.ItemsLost, res.Rejected, res.TimedOut, l.Len())
	}

	res.BinsOpened = nextBinID
	res.sortBins()
	return res, nil
}
