package metrics

import (
	"math"
	"math/rand"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/faults"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

// fragAuditObserver forwards every callback to the tracker and, at each
// BeforePack (when the engine guarantees the open slice is compacted and
// every prior event has been applied), cross-checks the incrementally
// maintained snapshot against a from-scratch recomputation. This is the
// history-independence property: whatever event order reached the current
// active set, the metric is a pure function of it.
type fragAuditObserver struct {
	t  *testing.T
	d  int
	tr *FragTracker
}

var (
	_ core.Observer          = (*fragAuditObserver)(nil)
	_ core.DepartureObserver = (*fragAuditObserver)(nil)
)

func (o *fragAuditObserver) BeforePack(req core.Request, open []*core.Bin) {
	o.tr.BeforePack(req, open)
	got := o.tr.Current()
	want := FragOf(o.d, open)
	if got.OpenBins != want.OpenBins {
		o.t.Fatalf("item %d: tracker sees %d open bins, recompute %d", req.ID, got.OpenBins, want.OpenBins)
	}
	const tol = 1e-9
	if math.Abs(got.Imbalance-want.Imbalance) > tol {
		o.t.Fatalf("item %d: tracker imbalance %v, recompute %v", req.ID, got.Imbalance, want.Imbalance)
	}
	for j := 0; j < o.d; j++ {
		if math.Abs(got.Load[j]-want.Load[j]) > tol {
			o.t.Fatalf("item %d: tracker load[%d] %v, recompute %v", req.ID, j, got.Load[j], want.Load[j])
		}
		if math.Abs(got.Stranded[j]-want.Stranded[j]) > tol {
			o.t.Fatalf("item %d: tracker stranded[%d] %v, recompute %v", req.ID, j, got.Stranded[j], want.Stranded[j])
		}
	}
}

func (o *fragAuditObserver) AfterPack(req core.Request, b *core.Bin, opened bool) {
	o.tr.AfterPack(req, b, opened)
}
func (o *fragAuditObserver) BinClosed(b *core.Bin, t float64) { o.tr.BinClosed(b, t) }
func (o *fragAuditObserver) ItemDeparted(itemID int, b *core.Bin, t float64) {
	o.tr.ItemDeparted(itemID, b, t)
}

// fragList builds a random instance with enough churn that bins see
// departures while staying open.
func fragList(seed int64, n, d int) *item.List {
	r := rand.New(rand.NewSource(seed))
	l := item.NewList(d)
	for i := 0; i < n; i++ {
		size := vector.New(d)
		for j := range size {
			size[j] = float64(1+r.Intn(40)) / 100
		}
		arr := float64(r.Intn(200))
		l.Add(arr, arr+1+float64(r.Intn(60)), size)
	}
	return l
}

// TestFragTrackerMatchesRecompute runs the incremental-vs-recompute audit
// over every policy family and several random instances, fault-free and
// crashing.
func TestFragTrackerMatchesRecompute(t *testing.T) {
	for _, d := range []int{1, 2, 3} {
		for seed := int64(1); seed <= 3; seed++ {
			l := fragList(seed, 120, d)
			for _, p := range append(core.StandardPolicies(seed), core.FragmentationAwarePolicies(seed)...) {
				tr := NewFragTracker(d, NewRegistry())
				obs := &fragAuditObserver{t: t, d: d, tr: tr}
				if _, err := core.Simulate(l, p, core.WithObserver(obs)); err != nil {
					t.Fatalf("d=%d seed=%d %s: %v", d, seed, p.Name(), err)
				}
				if cur := tr.Current(); cur.OpenBins != 0 {
					t.Fatalf("d=%d seed=%d %s: %d bins still open after Finish", d, seed, p.Name(), cur.OpenBins)
				}
			}
		}
	}
}

// TestFragSummaryHandComputed pins the integrals on a hand-worked run: one
// item of size (0.5, 0.25) alive on [0, 10) in a single bin. All values are
// exact dyadic floats, so the comparisons are equalities.
func TestFragSummaryHandComputed(t *testing.T) {
	l := item.NewList(2)
	l.Add(0, 10, vector.Of(0.5, 0.25))
	tr := NewFragTracker(2, NewRegistry())
	if _, err := core.Simulate(l, core.NewFirstFit(), core.WithObserver(tr)); err != nil {
		t.Fatal(err)
	}
	s := tr.Summary()
	check := func(name string, got, want float64) {
		t.Helper()
		if got != want {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	check("BinTime", s.BinTime, 10)
	check("UsedTime[0]", s.UsedTime[0], 5)
	check("UsedTime[1]", s.UsedTime[1], 2.5)
	check("FreeTime[0]", s.FreeTime[0], 5)
	check("FreeTime[1]", s.FreeTime[1], 7.5)
	// residual (0.5, 0.75), usable 0.5: dim 1 strands 0.25 for 10 units.
	check("StrandedTime[0]", s.StrandedTime[0], 0)
	check("StrandedTime[1]", s.StrandedTime[1], 2.5)
	check("WastePct", s.WastePct, 100*12.5/20)
	check("FragPct", s.FragPct, 100*2.5/12.5)
	check("MeanImbalance", s.MeanImbalance, 0.25)
	check("Horizon", s.Horizon, 10)
}

// TestFragSnapshotReorderInvariant is the event-reordering property: two
// instances whose arrival order is swapped but whose active set at the probe
// time is the same multiset of bin loads must yield bit-identical snapshots.
func TestFragSnapshotReorderInvariant(t *testing.T) {
	a, b := vector.Of(0.75, 0.25), vector.Of(0.5, 0.5)
	run := func(first, second vector.Vector) FragSnapshot {
		l := item.NewList(2)
		// a+b exceeds capacity in dim 0, so First Fit opens two bins
		// whichever arrives first; the active multiset at t=5 is {a, b}
		// either way, split across bins in swapped order.
		l.Add(0, 10, first)
		l.Add(0, 10, second)
		tr := NewFragTracker(2, nil)
		eng, err := core.NewEngine(l, core.NewFirstFit(), core.WithObserver(tr))
		if err != nil {
			t.Fatal(err)
		}
		defer eng.Close()
		for i := 0; i < 2; i++ {
			if _, ok, err := eng.Step(); err != nil || !ok {
				t.Fatalf("step %d: ok=%v err=%v", i, ok, err)
			}
		}
		return tr.Current()
	}
	x, y := run(a, b), run(b, a)
	if x.OpenBins != y.OpenBins || x.Imbalance != y.Imbalance {
		t.Fatalf("reorder changed snapshot: %+v vs %+v", x, y)
	}
	for j := 0; j < 2; j++ {
		if x.Load[j] != y.Load[j] || x.Stranded[j] != y.Stranded[j] {
			t.Fatalf("reorder changed dim %d: %+v vs %+v", j, x, y)
		}
	}
	if x.Stranded[0] == 0 && x.Stranded[1] == 0 {
		t.Fatal("test instance strands nothing; it cannot exercise the invariant")
	}
}

// TestFragTrackerUnderFaults checks the tracker stays consistent when bins
// crash: BinClosed precedes BinCrashed, so the open set never drifts.
func TestFragTrackerUnderFaults(t *testing.T) {
	l := fragList(7, 150, 2)
	tr := NewFragTracker(2, NewRegistry())
	obs := &fragAuditObserver{t: t, d: 2, tr: tr}
	_, err := core.Simulate(l, core.NewBestFit(core.MaxLoad()), core.WithObserver(obs),
		core.WithFaults(faults.MTBF{Mean: 40, Seed: 3}, faults.Fixed{Wait: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if cur := tr.Current(); cur.OpenBins != 0 {
		t.Fatalf("%d bins still open after faulty run", cur.OpenBins)
	}
}
