package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/experiments"
)

// readAll returns name -> content for every file in dir.
func readAll(t *testing.T, dir string) map[string]string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	out := make(map[string]string, len(entries))
	for _, e := range entries {
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		out[e.Name()] = string(b)
	}
	return out
}

// TestRenderFiguresDeterministic pins the -workers/-shard contract: the same
// eight files, byte for byte, whether rendered sequentially, in parallel, or
// as two merged shard slices into separate invocations.
func TestRenderFiguresDeterministic(t *testing.T) {
	seq := t.TempDir()
	if wrote, err := renderFigures(seq, 11, 24, 1, experiments.ShardSlice{}); err != nil || wrote != 8 {
		t.Fatalf("sequential render: wrote=%d err=%v", wrote, err)
	}
	want := readAll(t, seq)
	if len(want) != 8 {
		t.Fatalf("expected 8 figures, got %d", len(want))
	}

	par := t.TempDir()
	if _, err := renderFigures(par, 11, 24, 4, experiments.ShardSlice{}); err != nil {
		t.Fatal(err)
	}
	if got := readAll(t, par); len(got) != len(want) {
		t.Fatalf("parallel render produced %d files, want %d", len(got), len(want))
	} else {
		for name, content := range want {
			if got[name] != content {
				t.Errorf("parallel render of %s differs from sequential", name)
			}
		}
	}

	sliced := t.TempDir()
	w0, err := renderFigures(sliced, 11, 24, 2, experiments.ShardSlice{Index: 0, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	w1, err := renderFigures(sliced, 11, 24, 2, experiments.ShardSlice{Index: 1, Count: 2})
	if err != nil {
		t.Fatal(err)
	}
	if w0+w1 != 8 {
		t.Fatalf("slices wrote %d+%d figures, want 8 total", w0, w1)
	}
	got := readAll(t, sliced)
	if len(got) != len(want) {
		t.Fatalf("sliced render produced %d files, want %d", len(got), len(want))
	}
	for name, content := range want {
		if got[name] != content {
			t.Errorf("sliced render of %s differs from sequential", name)
		}
	}
}

// TestFragFigureShowsRankingFlip is the head-to-head acceptance check: the
// markdown output must report at least one uniform-vs-azure ranking flip, and
// at least one flip must involve a fragmentation-aware policy — the FARB-style
// evidence that policy rankings do not transfer between trace models.
func TestFragFigureShowsRankingFlip(t *testing.T) {
	study, err := runFragStudy(11)
	if err != nil {
		t.Fatal(err)
	}
	flips := study.Flips("uniform", "azure", 0.01)
	if len(flips) == 0 {
		t.Fatal("no uniform-vs-azure ranking flips above the noise gap")
	}
	fragAware := make(map[string]bool)
	for _, n := range core.FragmentationAwareNames() {
		fragAware[n] = true
	}
	found := false
	for _, f := range flips {
		if fragAware[f.A] || fragAware[f.B] {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no flip involves a fragmentation-aware policy: %+v", flips)
	}
	md := fragMarkdown(study)
	if !strings.Contains(md, "## Ranking flips: uniform vs azure") ||
		!strings.Contains(md, "but loses on") {
		t.Errorf("markdown does not surface the flips:\n%s", md)
	}
	for _, trace := range []string{"uniform", "azure", "google"} {
		if !strings.Contains(md, "## "+trace) {
			t.Errorf("markdown missing %s table", trace)
		}
	}
}

// TestDefragFigureShowsAzureNetWin is the defragmentation study's figure-level
// acceptance check (DESIGN.md §14): the markdown report must show at least one
// policy on the Azure-like traces whose budgeted-migration leg beats its
// irrevocable baseline even after paying the migration cost, with the cost
// columns present.
func TestDefragFigureShowsAzureNetWin(t *testing.T) {
	study, err := runDefragStudy(11)
	if err != nil {
		t.Fatal(err)
	}
	if len(study.NetWins("azure")) == 0 {
		t.Fatal("no policy is a net win on the azure traces under the default budget")
	}
	md := defragMarkdown(study)
	for _, trace := range []string{"uniform", "azure", "google"} {
		if !strings.Contains(md, "## "+trace) {
			t.Errorf("markdown missing %s table", trace)
		}
	}
	if !strings.Contains(md, "move cost") {
		t.Error("markdown does not report the migration cost column")
	}
	ti := strings.Index(md, "## azure")
	gi := strings.Index(md, "## google")
	if ti < 0 || gi < 0 || ti > gi {
		t.Fatalf("markdown trace sections out of order: azure@%d google@%d", ti, gi)
	}
	azure := md[ti:gi]
	if !strings.Contains(azure, "net wins after paying migration cost: ") ||
		strings.Contains(azure, "net wins after paying migration cost: none") {
		t.Errorf("azure section does not list net-win policies:\n%s", azure)
	}
}
