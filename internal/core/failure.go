package core

// This file defines the failure/recovery seams of the engine: fault
// injection (forced bin closure with eviction), retry scheduling for evicted
// items, finite-fleet admission control, and the observer extension that
// exposes all failure-path events to instrumentation.
//
// The paper's model assumes an unbounded, perfectly reliable fleet; these
// seams relax both assumptions while keeping the engine fully deterministic:
// no wall clock, no global RNG — every fault schedule is a pure function of
// its seed and the simulated timeline, so the same inputs reproduce the same
// run bit for bit.

// FailureInjector decides, when a bin opens, whether and when that bin
// crashes. Implementations must be deterministic: the crash time may depend
// only on the injector's own configuration (seed, trace) and the (binID,
// openedAt) arguments. internal/faults provides seeded MTBF and explicit
// trace schedules.
//
// The engine calls BinOpened exactly once per opened bin, in opening order.
// Returned crash times that are NaN or not strictly after openedAt are
// ignored (the bin never crashes); a crash scheduled after the bin has
// closed naturally is a no-op.
type FailureInjector interface {
	// BinOpened returns the absolute simulation time at which the bin with
	// the given ID (opened at openedAt) crashes. ok=false means the bin
	// never crashes.
	BinOpened(binID int, openedAt float64) (crashAt float64, ok bool)
}

// RetryPolicy schedules the re-dispatch of items evicted by a bin crash.
// attempt is 1 for the first eviction of an item, 2 for the second, and so
// on. Negative delays are treated as 0; a delay that pushes the re-dispatch
// to or past the item's departure time makes the item lost (it cannot
// resume). internal/faults provides immediate, fixed-delay and capped
// exponential-backoff implementations.
type RetryPolicy interface {
	// Name returns a stable identifier, e.g. "backoff(1,cap=30)".
	Name() string
	// Delay returns the re-dispatch delay for the given eviction attempt.
	Delay(attempt int) float64
}

// retryNow is the default RetryPolicy when faults are injected without an
// explicit policy: evicted items re-dispatch at the crash instant.
type retryNow struct{}

func (retryNow) Name() string      { return "immediate" }
func (retryNow) Delay(int) float64 { return 0 }

// FailureObserver is an optional extension of Observer (like
// SelectObserver): when the attached Observer also implements it, the engine
// reports every failure-path event. metrics.Collector implements it to give
// eviction/retry/rejection/queue counters.
//
// Note that under admission control a BeforePack callback is not always
// followed by AfterPack: a dispatch that is queued or rejected fires
// ItemQueued or ItemRejected instead.
type FailureObserver interface {
	// BinCrashed fires when fault injection forcibly closes a bin at time t,
	// after the bin's BinClosed callback. evicted is the number of items
	// that were still active in the bin.
	BinCrashed(b *Bin, t float64, evicted int)
	// ItemEvicted fires for each item displaced by a crash, in ascending
	// item-ID order. resumeAt is the scheduled re-dispatch time, or the
	// item's departure time when the item is lost (the retry delay would
	// push it past its own departure) — either way, resumeAt-t is the
	// usage time lost to the crash.
	ItemEvicted(req Request, from *Bin, t, resumeAt float64)
	// ItemLost fires after ItemEvicted when the evicted item cannot be
	// re-dispatched before its departure. Terminal for the item.
	ItemLost(req Request, t float64)
	// ItemRejected fires when a dispatch is dropped by admission control:
	// timedOut=false means the fleet was full and no queue is configured;
	// timedOut=true means the item waited in the admission queue until its
	// deadline (or its own departure) passed. Terminal for the item.
	ItemRejected(req Request, t float64, timedOut bool)
	// ItemQueued fires when a dispatch finds the fleet full and enters the
	// admission queue.
	ItemQueued(req Request, t float64)
	// ItemDequeued fires when a queued item is finally placed, immediately
	// before its AfterPack callback. queuedAt is the enqueue time.
	ItemDequeued(req Request, queuedAt, t float64)
}

// BaseFailureObserver is a FailureObserver with no-op methods, for
// embedding alongside BaseObserver.
type BaseFailureObserver struct{}

// BinCrashed implements FailureObserver.
func (BaseFailureObserver) BinCrashed(*Bin, float64, int) {}

// ItemEvicted implements FailureObserver.
func (BaseFailureObserver) ItemEvicted(Request, *Bin, float64, float64) {}

// ItemLost implements FailureObserver.
func (BaseFailureObserver) ItemLost(Request, float64) {}

// ItemRejected implements FailureObserver.
func (BaseFailureObserver) ItemRejected(Request, float64, bool) {}

// ItemQueued implements FailureObserver.
func (BaseFailureObserver) ItemQueued(Request, float64) {}

// ItemDequeued implements FailureObserver.
func (BaseFailureObserver) ItemDequeued(Request, float64, float64) {}

// WithFaults injects server crashes into the run: inj schedules a crash time
// per opened bin, and rp schedules the re-dispatch of evicted items (nil
// means immediate re-dispatch). A crash forcibly closes the bin — its usage
// accrues up to the crash instant — and returns its active items to the
// dispatcher; each re-placement is a fresh packing decision with
// Request.Attempt incremented.
func WithFaults(inj FailureInjector, rp RetryPolicy) Option {
	return func(c *config) {
		c.injector = inj
		if rp != nil {
			c.retry = rp
		}
	}
}

// WithMaxBins caps the fleet at n simultaneously open bins (n <= 0 means
// unbounded, the paper's model). When an item fits no open bin and the cap
// is reached, the dispatch is rejected — or queued, if WithAdmissionQueue is
// also configured.
func WithMaxBins(n int) Option {
	return func(c *config) { c.maxBins = n }
}

// WithAdmissionQueue enables graceful degradation under WithMaxBins: a
// dispatch that cannot be admitted waits in a FIFO queue and is retried
// whenever capacity frees (a departure, close or crash). An entry is dropped
// as timed out once deadline time units have passed since it was queued, or
// once its own departure time is reached, whichever comes first. The
// deadline itself is inclusive: an entry can still be placed at exactly
// queuedAt+deadline.
func WithAdmissionQueue(deadline float64) Option {
	return func(c *config) {
		c.queueWhenFull = true
		c.queueDeadline = deadline
	}
}
