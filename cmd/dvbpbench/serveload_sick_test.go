package main

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"dvbp/internal/metrics"
	"dvbp/internal/server"
	"dvbp/internal/vfs"
)

// TestServeLoadSurvivesSickDisk is the degraded-mode acceptance run from the
// client's side: a full -serve-load against a server whose disk refuses
// fsyncs at planned moments mid-load (one ENOSPC, one EIO burst). The
// affected tenants degrade and answer 503, the load driver retries through
// the window, every item is eventually acknowledged, and -serve-verify must
// find every acknowledgement intact — the sick disk cost latency, never an
// acknowledged placement.
func TestServeLoadSurvivesSickDisk(t *testing.T) {
	// One-shot faults well past the store-open and tenant-create window, so
	// they land under load: every place costs two fsync barriers, and
	// 2 tenants x 40 items supply hundreds.
	inj := vfs.NewInjector(vfs.OS{},
		vfs.Fault{Kind: vfs.FaultSync, Nth: 60, Err: syscall.ENOSPC},
		vfs.Fault{Kind: vfs.FaultSync, Nth: 90, Err: syscall.EIO},
		vfs.Fault{Kind: vfs.FaultSync, Nth: 130, Err: syscall.ENOSPC},
	)
	reg := metrics.NewRegistry()
	store, err := server.OpenStore(t.TempDir(), server.Limits{
		FS:           inj,
		RetryBackoff: 100 * time.Microsecond,
	}, reg)
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	t.Cleanup(store.Close)
	ts := httptest.NewServer(server.New(store, reg))
	t.Cleanup(ts.Close)

	acks := filepath.Join(t.TempDir(), "acks.jsonl")
	if err := runServeLoad(ts.URL, acks, 2, 40, 2, 11); err != nil {
		t.Fatalf("serve-load through the sick window: %v", err)
	}
	data, err := os.ReadFile(acks)
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines != 2*40 {
		t.Fatalf("recorded %d acks, want %d — the driver lost items to the sick disk", lines, 2*40)
	}

	snap := reg.Snapshot()
	if m, ok := snap.Find("dvbp_server_errors_total"); !ok || m.Value < 1 {
		t.Fatalf("errors_total %v — the fault plan never made the server refuse", m.Value)
	}
	if m, ok := snap.Find("dvbp_server_degraded_tenants"); !ok || m.Value != 0 {
		t.Fatalf("degraded_tenants %v after the load drained, want 0", m.Value)
	}

	if err := runServeVerify(ts.URL, acks); err != nil {
		t.Fatalf("serve-verify after the sick window: %v", err)
	}
}
