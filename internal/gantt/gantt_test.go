package gantt

import (
	"strings"
	"testing"

	"dvbp/internal/adversary"
	"dvbp/internal/analysis"
	"dvbp/internal/core"
	"dvbp/internal/item"
	"dvbp/internal/vector"
)

func smallInstance() *item.List {
	l := item.NewList(1)
	l.Add(0, 5, vector.Of(0.6))
	l.Add(1, 3, vector.Of(0.6))
	l.Add(2, 6, vector.Of(0.3))
	return l
}

func TestPackingRendersLanesAndItems(t *testing.T) {
	l := smallInstance()
	res, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	svg := Packing(l, res, Options{Title: "pack", ShowItemIDs: true})
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not an SVG document")
	}
	for _, want := range []string{"pack", "bin 0", "bin 1"} {
		if !strings.Contains(svg, want) {
			t.Errorf("missing %q", want)
		}
	}
	// One background rect per bin + one rect per item + canvas = 2 + 3 + 1.
	if n := strings.Count(svg, "<rect"); n != 6 {
		t.Errorf("%d rects, want 6", n)
	}
}

func TestMTFFigure1ShowsLeadingIntervals(t *testing.T) {
	l := smallInstance()
	p := core.NewMoveToFront()
	dec := analysis.NewMTFDecomposition(p)
	res, err := core.Simulate(l, p, core.WithObserver(dec))
	if err != nil {
		t.Fatal(err)
	}
	svg := MTFFigure1(l, res, dec, Options{Title: "fig1"})
	if !strings.Contains(svg, "#ff725c") {
		t.Error("no leading (red) segments rendered")
	}
	if !strings.Contains(svg, "#4269d0") {
		t.Error("no usage (blue) lines rendered")
	}
	if !strings.Contains(svg, "leading intervals P") {
		t.Error("missing legend")
	}
}

func TestFFFigure2ShowsPQSplit(t *testing.T) {
	l := item.NewList(1)
	l.Add(0, 10, vector.Of(0.6))
	l.Add(2, 12, vector.Of(0.6))
	res, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	svg := FFFigure2(l, res, Options{Title: "fig2"})
	// Bin 1 has both P and Q; bin 0 has only Q: 1 blue + 2 red lines plus axis decorations.
	if strings.Count(svg, "#4269d0") != 1 {
		t.Errorf("want exactly 1 P segment, svg:\n%s", svg)
	}
	if strings.Count(svg, "#ff725c") != 2 {
		t.Errorf("want exactly 2 Q segments")
	}
}

func TestLoadFigure3OnTheorem5(t *testing.T) {
	in, err := adversary.Theorem5(2, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.Simulate(in.List, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	svg := LoadFigure3(in.List, res, nil, Options{Title: "fig3"})
	if !strings.Contains(svg, "t = 0") {
		t.Error("missing t=0 panel")
	}
	if strings.Count(svg, "<rect") < 4 {
		t.Error("expected load bars")
	}
	// Explicit sample times work too.
	svg2 := LoadFigure3(in.List, res, []float64{0.5, 1.5}, Options{})
	if !strings.Contains(svg2, "t = 0.5") || !strings.Contains(svg2, "t = 1.5") {
		t.Error("explicit sample times not rendered")
	}
}

func TestEscape(t *testing.T) {
	l := smallInstance()
	res, err := core.Simulate(l, core.NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	svg := Packing(l, res, Options{Title: "a<b&c"})
	if strings.Contains(svg, "a<b&c") {
		t.Error("title not escaped")
	}
}
