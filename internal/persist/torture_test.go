package persist

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"dvbp/internal/core"
	"dvbp/internal/metrics"
	"dvbp/internal/vfs"
)

// TestTortureKillAndRecover is the crash-consistency torture loop: a run is
// persisted to completion once, then killed at dozens of random points — the
// WAL cut at an arbitrary BYTE offset (not a record boundary), snapshots
// randomly deleted, random bits flipped — and recovered. Every recovery must
// either resume to a byte-identical final result (and byte-identical metrics
// under a deterministic clock), or fail with a structured corruption error
// when the damage removed the run's identity. It must never panic and never
// produce a silently different packing.
func TestTortureKillAndRecover(t *testing.T) {
	l := testList(t, 80)
	const policy = "MoveToFront"
	const every = 16

	// Uninterrupted reference run, keeping its directory as the template.
	refDir := t.TempDir()
	wantRes, wantMet := referenceRun(t, l, policy, refDir, every)
	refWAL, err := os.ReadFile(filepath.Join(refDir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	refFD, err := ReadFile(nil, filepath.Join(refDir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if len(refFD.Records) < 2 {
		t.Fatalf("reference WAL has %d records", len(refFD.Records))
	}
	// metaEnd is the first byte after the run-meta record: any cut at or past
	// it leaves a recoverable log.
	metaEnd := refFD.Offsets[1]

	rng := rand.New(rand.NewSource(987654321))
	const trials = 64
	recovered := 0
	for trial := 0; trial < trials; trial++ {
		dir := t.TempDir()
		copyRun(t, refDir, dir)
		mode := trial % 4
		cut := metaEnd + rng.Int63n(int64(len(refWAL))-metaEnd+1)
		metaIntact := true
		switch mode {
		case 0: // kill: cut the WAL at a random byte
			truncate(t, filepath.Join(dir, walFile), cut)
		case 1: // kill + lose snapshots
			truncate(t, filepath.Join(dir, walFile), cut)
			deleteRandomSnapshots(t, rng, dir)
		case 2: // bit flip anywhere in the WAL
			off := rng.Int63n(int64(len(refWAL)))
			flipByte(t, filepath.Join(dir, walFile), off)
			// A flip inside the header or the meta record destroys the run's
			// identity; anywhere else only truncates the usable suffix.
			metaIntact = off >= metaEnd
		case 3: // bit flip inside a random snapshot file
			flipRandomSnapshot(t, rng, dir)
		}

		col := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
		cfg := Config{Dir: dir, Every: every, SyncEvery: 1, Aux: []AuxCodec{col.Registry()}}
		rec, err := Recover(l, cfg, append(faultOpts(), core.WithObserver(col))...)
		if err != nil {
			if metaIntact {
				t.Fatalf("trial %d (mode %d): recovery failed with the meta intact: %v", trial, mode, err)
			}
			var ce *CorruptionError
			if !errors.As(err, &ce) && !strings.Contains(err.Error(), "persist:") {
				t.Fatalf("trial %d: unstructured recovery failure: %v", trial, err)
			}
			continue
		}
		res, err := rec.Session.Run()
		if err != nil {
			t.Fatalf("trial %d (mode %d): resume failed: %v", trial, mode, err)
		}
		if got := resultJSON(t, res); got != wantRes {
			t.Fatalf("trial %d (mode %d): result diverged\n got %s\nwant %s", trial, mode, got, wantRes)
		}
		mj, err := col.Registry().MarshalAux()
		if err != nil {
			t.Fatalf("trial %d: metrics marshal: %v", trial, err)
		}
		if string(mj) != wantMet {
			t.Fatalf("trial %d (mode %d): metrics diverged\n got %s\nwant %s", trial, mode, mj, wantMet)
		}
		recovered++
	}
	if recovered < trials*3/4 {
		t.Fatalf("only %d/%d trials recovered — damage modes are too destructive to exercise recovery", recovered, trials)
	}
}

// TestTortureRepeatedCrashes kills the same run several times in a row — crash
// during recovery's own append window included — and still expects the final
// result to match.
func TestTortureRepeatedCrashes(t *testing.T) {
	l := testList(t, 80)
	const policy = "RandomFit"
	wantRes, _ := referenceRun(t, l, policy, t.TempDir(), 8)

	dir := t.TempDir()
	col := metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
	cfg := Config{Dir: dir, Every: 8, SyncEvery: 1, Aux: []AuxCodec{col.Registry()}}
	e, err := core.NewEngine(l, newTestPolicy(t, policy), append(faultOpts(), core.WithObserver(col))...)
	if err != nil {
		t.Fatalf("NewEngine: %v", err)
	}
	s, err := Begin(e, NewRunMeta(l, policy, 1, "test"), cfg)
	if err != nil {
		e.Close()
		t.Fatalf("Begin: %v", err)
	}
	rng := rand.New(rand.NewSource(1357))
	for round := 0; ; round++ {
		// Step a random distance, then crash without closing cleanly.
		steps := 5 + rng.Intn(20)
		done := false
		for i := 0; i < steps; i++ {
			_, ok, err := s.Step()
			if err != nil {
				t.Fatalf("round %d step: %v", round, err)
			}
			if !ok {
				done = true
				break
			}
		}
		if done {
			res, err := s.Finish()
			if err != nil {
				t.Fatalf("Finish: %v", err)
			}
			if got := resultJSON(t, res); got != wantRes {
				t.Fatalf("result diverged after %d crashes\n got %s\nwant %s", round, got, wantRes)
			}
			return
		}
		s.wal.f.Close()
		s.engine.Close()

		col = metrics.NewCollector(metrics.WithClock(&metrics.Manual{}))
		cfg.Aux = []AuxCodec{col.Registry()}
		rec, err := Recover(l, cfg, append(faultOpts(), core.WithObserver(col))...)
		if err != nil {
			t.Fatalf("round %d recover: %v", round, err)
		}
		s = rec.Session
	}
}

// copyRun clones a checkpoint directory.
func copyRun(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// deleteRandomSnapshots removes a random non-empty subset of snapshot files.
func deleteRandomSnapshots(t *testing.T, rng *rand.Rand, dir string) {
	t.Helper()
	snaps, err := listSnapshots(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		return
	}
	rng.Shuffle(len(snaps), func(i, j int) { snaps[i], snaps[j] = snaps[j], snaps[i] })
	n := 1 + rng.Intn(len(snaps))
	for _, sf := range snaps[:n] {
		if err := os.Remove(filepath.Join(dir, sf.name)); err != nil {
			t.Fatal(err)
		}
	}
}

// flipRandomSnapshot flips one random byte in one random snapshot file.
func flipRandomSnapshot(t *testing.T, rng *rand.Rand, dir string) {
	t.Helper()
	snaps, err := listSnapshots(vfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) == 0 {
		return
	}
	sf := snaps[rng.Intn(len(snaps))]
	path := filepath.Join(dir, sf.name)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	flipByte(t, path, rng.Int63n(info.Size()))
}

// TestTortureSnapshotNamesSorted pins the zero-padded snapshot naming that
// keeps lexical and numeric order identical (recovery iterates newest-first).
func TestTortureSnapshotNamesSorted(t *testing.T) {
	names := []string{snapName(5), snapName(80), snapName(9), snapName(1200)}
	lex := append([]string(nil), names...)
	sort.Strings(lex)
	want := []string{snapName(5), snapName(9), snapName(80), snapName(1200)}
	for i := range want {
		if lex[i] != want[i] {
			t.Fatalf("lexical order %v != numeric order %v", lex, want)
		}
	}
}
