package persist

import (
	"encoding/binary"
	"math"

	"dvbp/internal/core"
)

// Event record payload layout (all integers varint unless noted):
//
//	class byte | seq | time float64-bits uint64 LE | itemID | binID | flags byte
//
// flags bit 0 = Placed, bit 1 = Opened. The class byte reuses the engine's
// stable EventClass values.

const eventFlagPlaced, eventFlagOpened = 1, 2

// canonVarint decodes a varint and rejects overlong (non-canonical)
// encodings, so decode∘encode is the identity on every accepted payload.
func canonVarint(p []byte) (int64, int, bool) {
	v, n := binary.Varint(p)
	if n <= 0 {
		return 0, 0, false
	}
	var tmp [binary.MaxVarintLen64]byte
	if binary.PutVarint(tmp[:], v) != n {
		return 0, 0, false
	}
	return v, n, true
}

// AppendEventRecord serialises one committed engine event onto dst.
func AppendEventRecord(dst []byte, rec core.EventRecord) []byte {
	dst = append(dst, byte(rec.Class))
	dst = binary.AppendVarint(dst, rec.Seq)
	dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(rec.Time))
	dst = binary.AppendVarint(dst, int64(rec.ItemID))
	dst = binary.AppendVarint(dst, int64(rec.BinID))
	var flags byte
	if rec.Placed {
		flags |= eventFlagPlaced
	}
	if rec.Opened {
		flags |= eventFlagOpened
	}
	return append(dst, flags)
}

// DecodeEventRecord is the inverse of AppendEventRecord. It never panics:
// malformed input of any shape returns a *CorruptionError.
func DecodeEventRecord(payload []byte) (core.EventRecord, error) {
	var rec core.EventRecord
	if len(payload) < 1 {
		return rec, corrupt("empty event record")
	}
	rec.Class = core.EventClass(payload[0])
	if rec.Class > core.EventMigration {
		return rec, corrupt("unknown event class %d", payload[0])
	}
	p := payload[1:]
	seq, n, ok := canonVarint(p)
	if !ok {
		return rec, corrupt("malformed event sequence")
	}
	rec.Seq = seq
	p = p[n:]
	if len(p) < 8 {
		return rec, corrupt("truncated event time")
	}
	rec.Time = math.Float64frombits(binary.LittleEndian.Uint64(p))
	p = p[8:]
	itemID, n, ok := canonVarint(p)
	if !ok {
		return rec, corrupt("malformed event item ID")
	}
	p = p[n:]
	binID, n, ok := canonVarint(p)
	if !ok {
		return rec, corrupt("malformed event bin ID")
	}
	p = p[n:]
	if len(p) != 1 {
		return rec, corrupt("event record has %d trailing bytes", len(p))
	}
	flags := p[0]
	if flags&^(eventFlagPlaced|eventFlagOpened) != 0 {
		return rec, corrupt("unknown event flags %#x", flags)
	}
	rec.ItemID = int(itemID)
	rec.BinID = int(binID)
	rec.Placed = flags&eventFlagPlaced != 0
	rec.Opened = flags&eventFlagOpened != 0
	if rec.Seq < 1 {
		return rec, corrupt("event sequence %d < 1", rec.Seq)
	}
	if math.IsNaN(rec.Time) {
		return rec, corrupt("event time is NaN")
	}
	return rec, nil
}
